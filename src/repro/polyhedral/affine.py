"""Affine expressions and affine functions over named dimensions.

An :class:`AffineExpr` is a linear combination of named variables (loop
iterators and/or program parameters) plus a rational constant.  An
:class:`AffineFunction` maps an iteration vector to a data-space vector, one
:class:`AffineExpr` per output dimension — this is the paper's access-function
matrix ``F`` in a coefficient-dictionary form that keeps the code independent
of any particular variable ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.utils.frac import as_fraction
from repro.polyhedral import linalg

Number = Union[int, Fraction]
ExprLike = Union["AffineExpr", int, Fraction]


class AffineExpr:
    """An affine expression ``sum_i c_i * x_i + c0`` with exact coefficients.

    Instances are immutable; all arithmetic returns new expressions.
    """

    __slots__ = ("_coeffs", "_constant")

    def __init__(
        self,
        coeffs: Optional[Mapping[str, Number]] = None,
        constant: Number = 0,
    ) -> None:
        clean: Dict[str, Fraction] = {}
        for name, value in (coeffs or {}).items():
            frac = as_fraction(value)
            if frac != 0:
                clean[name] = frac
        self._coeffs = clean
        self._constant = as_fraction(constant)

    # -- constructors -----------------------------------------------------
    @classmethod
    def var(cls, name: str) -> "AffineExpr":
        """The expression consisting of a single variable with coefficient 1."""
        return cls({name: 1})

    @classmethod
    def const(cls, value: Number) -> "AffineExpr":
        """A constant expression."""
        return cls({}, value)

    @classmethod
    def coerce(cls, value: ExprLike) -> "AffineExpr":
        """Accept an expression, int or Fraction and return an AffineExpr."""
        if isinstance(value, AffineExpr):
            return value
        return cls.const(value)

    @classmethod
    def linear_combination(
        cls, names: Sequence[str], coefficients: Sequence[Number], constant: Number = 0
    ) -> "AffineExpr":
        """Build ``sum coefficients[i]*names[i] + constant``."""
        if len(names) != len(coefficients):
            raise ValueError("names and coefficients must have equal length")
        return cls(dict(zip(names, coefficients)), constant)

    # -- inspection --------------------------------------------------------
    @property
    def coefficients(self) -> Dict[str, Fraction]:
        """Copy of the variable→coefficient mapping (zero coefficients omitted)."""
        return dict(self._coeffs)

    @property
    def constant(self) -> Fraction:
        return self._constant

    @property
    def variables(self) -> Tuple[str, ...]:
        """Variables with non-zero coefficient, sorted for determinism."""
        return tuple(sorted(self._coeffs))

    def coefficient(self, name: str) -> Fraction:
        """Coefficient of *name* (0 if absent)."""
        return self._coeffs.get(name, Fraction(0))

    def is_constant(self) -> bool:
        return not self._coeffs

    def is_zero(self) -> bool:
        return not self._coeffs and self._constant == 0

    def depends_on(self, names: Iterable[str]) -> bool:
        """True if any of *names* appears with a non-zero coefficient."""
        return any(name in self._coeffs for name in names)

    # -- arithmetic ---------------------------------------------------------
    def __add__(self, other: ExprLike) -> "AffineExpr":
        other = AffineExpr.coerce(other)
        coeffs = dict(self._coeffs)
        for name, value in other._coeffs.items():
            coeffs[name] = coeffs.get(name, Fraction(0)) + value
        return AffineExpr(coeffs, self._constant + other._constant)

    def __radd__(self, other: ExprLike) -> "AffineExpr":
        return self.__add__(other)

    def __neg__(self) -> "AffineExpr":
        return AffineExpr({k: -v for k, v in self._coeffs.items()}, -self._constant)

    def __sub__(self, other: ExprLike) -> "AffineExpr":
        return self + (-AffineExpr.coerce(other))

    def __rsub__(self, other: ExprLike) -> "AffineExpr":
        return AffineExpr.coerce(other) + (-self)

    def __mul__(self, scalar: Number) -> "AffineExpr":
        factor = as_fraction(scalar)
        return AffineExpr(
            {k: v * factor for k, v in self._coeffs.items()}, self._constant * factor
        )

    def __rmul__(self, scalar: Number) -> "AffineExpr":
        return self.__mul__(scalar)

    def __truediv__(self, scalar: Number) -> "AffineExpr":
        factor = as_fraction(scalar)
        if factor == 0:
            raise ZeroDivisionError("division of an affine expression by zero")
        return self * (Fraction(1) / factor)

    # -- evaluation and substitution -----------------------------------------
    def evaluate(self, binding: Mapping[str, Number]) -> Fraction:
        """Evaluate with every variable bound; raises ``KeyError`` otherwise."""
        total = self._constant
        for name, coeff in self._coeffs.items():
            total += coeff * as_fraction(binding[name])
        return total

    def substitute(self, binding: Mapping[str, ExprLike]) -> "AffineExpr":
        """Replace variables by expressions/values; unbound variables survive."""
        result = AffineExpr.const(self._constant)
        for name, coeff in self._coeffs.items():
            if name in binding:
                result = result + AffineExpr.coerce(binding[name]) * coeff
            else:
                result = result + AffineExpr({name: coeff})
        return result

    def rename(self, mapping: Mapping[str, str]) -> "AffineExpr":
        """Rename variables according to *mapping* (missing names unchanged)."""
        coeffs: Dict[str, Fraction] = {}
        for name, coeff in self._coeffs.items():
            new = mapping.get(name, name)
            coeffs[new] = coeffs.get(new, Fraction(0)) + coeff
        return AffineExpr(coeffs, self._constant)

    def coefficients_vector(self, order: Sequence[str]) -> List[Fraction]:
        """Coefficient vector in the given variable *order* (constant excluded)."""
        return [self.coefficient(name) for name in order]

    # -- equality / hashing / display -----------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AffineExpr):
            return NotImplemented
        return self._coeffs == other._coeffs and self._constant == other._constant

    def __hash__(self) -> int:
        return hash((frozenset(self._coeffs.items()), self._constant))

    def __repr__(self) -> str:
        return f"AffineExpr({self})"

    def __str__(self) -> str:
        parts: List[str] = []
        for name in sorted(self._coeffs):
            coeff = self._coeffs[name]
            if coeff == 1:
                parts.append(f"+ {name}")
            elif coeff == -1:
                parts.append(f"- {name}")
            elif coeff > 0:
                parts.append(f"+ {coeff}*{name}")
            else:
                parts.append(f"- {-coeff}*{name}")
        if self._constant != 0 or not parts:
            if self._constant >= 0:
                parts.append(f"+ {self._constant}")
            else:
                parts.append(f"- {-self._constant}")
        text = " ".join(parts)
        if text.startswith("+ "):
            text = text[2:]
        return text


@dataclass(frozen=True)
class AffineFunction:
    """An affine map from an iteration space to a data space.

    Attributes
    ----------
    inputs:
        Ordered names of the input (iteration-space) dimensions.
    outputs:
        One affine expression per output (data-space) dimension.  Expressions
        may also mention program parameters, which are *not* listed in
        ``inputs``.
    """

    inputs: Tuple[str, ...]
    outputs: Tuple[AffineExpr, ...]

    def __init__(self, inputs: Sequence[str], outputs: Sequence[ExprLike]) -> None:
        object.__setattr__(self, "inputs", tuple(inputs))
        object.__setattr__(
            self, "outputs", tuple(AffineExpr.coerce(expr) for expr in outputs)
        )

    # -- constructors ---------------------------------------------------------
    @classmethod
    def identity(cls, names: Sequence[str]) -> "AffineFunction":
        """The identity map on the given dimension names."""
        return cls(names, [AffineExpr.var(name) for name in names])

    @classmethod
    def from_matrix(
        cls,
        inputs: Sequence[str],
        matrix: Sequence[Sequence[Number]],
        constants: Optional[Sequence[Number]] = None,
        params: Sequence[str] = (),
        param_matrix: Optional[Sequence[Sequence[Number]]] = None,
    ) -> "AffineFunction":
        """Build from the paper's matrix form ``F . (i, p, 1)^T``.

        ``matrix`` holds the iterator coefficients (one row per output
        dimension), ``param_matrix`` the parameter coefficients and
        ``constants`` the affine constants.
        """
        rows = len(matrix)
        constants = list(constants) if constants is not None else [0] * rows
        outputs = []
        for r in range(rows):
            expr = AffineExpr.linear_combination(inputs, matrix[r], constants[r])
            if param_matrix is not None:
                expr = expr + AffineExpr.linear_combination(params, param_matrix[r])
            outputs.append(expr)
        return cls(inputs, outputs)

    # -- inspection -------------------------------------------------------------
    @property
    def input_dim(self) -> int:
        return len(self.inputs)

    @property
    def output_dim(self) -> int:
        return len(self.outputs)

    @property
    def parameters(self) -> Tuple[str, ...]:
        """Names appearing in the outputs that are not input dimensions."""
        params = set()
        for expr in self.outputs:
            for name in expr.variables:
                if name not in self.inputs:
                    params.add(name)
        return tuple(sorted(params))

    def iterator_matrix(self) -> List[List[Fraction]]:
        """Coefficient matrix restricted to the input (iterator) dimensions."""
        return [expr.coefficients_vector(self.inputs) for expr in self.outputs]

    def rank(self) -> int:
        """Rank of the iterator-coefficient matrix.

        This is the quantity compared against the iteration-space
        dimensionality in the paper's reuse test (Algorithm 1, condition
        ``rank(F) < dim(i)``).
        """
        return linalg.matrix_rank(self.iterator_matrix())

    # -- application -------------------------------------------------------------
    def apply(self, binding: Mapping[str, Number]) -> Tuple[Fraction, ...]:
        """Apply the function to a fully bound point."""
        return tuple(expr.evaluate(binding) for expr in self.outputs)

    def apply_exprs(self, exprs: Mapping[str, ExprLike]) -> Tuple[AffineExpr, ...]:
        """Symbolically substitute expressions for the inputs."""
        return tuple(expr.substitute(exprs) for expr in self.outputs)

    def compose(self, inner: "AffineFunction") -> "AffineFunction":
        """Return ``self ∘ inner`` (apply *inner* first)."""
        substitution = {
            name: inner.outputs[idx] for idx, name in enumerate(self.inputs)
            if idx < len(inner.outputs)
        }
        if len(self.inputs) > len(inner.outputs):
            raise ValueError(
                "cannot compose: inner function produces fewer outputs than "
                "outer function consumes"
            )
        outputs = [expr.substitute(substitution) for expr in self.outputs]
        return AffineFunction(inner.inputs, outputs)

    def rename_inputs(self, mapping: Mapping[str, str]) -> "AffineFunction":
        """Rename input dimensions (and their uses in the outputs)."""
        new_inputs = [mapping.get(name, name) for name in self.inputs]
        new_outputs = [expr.rename(mapping) for expr in self.outputs]
        return AffineFunction(new_inputs, new_outputs)

    def drop_output_dims(self, indices: Iterable[int]) -> "AffineFunction":
        """Remove the given output dimensions (paper's ``F'`` construction)."""
        drop = set(indices)
        outputs = [expr for i, expr in enumerate(self.outputs) if i not in drop]
        return AffineFunction(self.inputs, outputs)

    def translate(self, offsets: Sequence[ExprLike]) -> "AffineFunction":
        """Subtract *offsets* from each output (``F'(y) - g`` in the paper)."""
        if len(offsets) != len(self.outputs):
            raise ValueError("offset vector length must match output dimension")
        outputs = [
            expr - AffineExpr.coerce(offset)
            for expr, offset in zip(self.outputs, offsets)
        ]
        return AffineFunction(self.inputs, outputs)

    def __str__(self) -> str:
        inputs = ", ".join(self.inputs)
        outputs = ", ".join(str(expr) for expr in self.outputs)
        return f"({inputs}) -> ({outputs})"
