"""Exact rational linear algebra used by the polyhedral layer.

numpy's floating-point routines are unsuitable for legality decisions (rank
tests, dependence feasibility), so the handful of kernels needed here —
Gaussian elimination, rank, nullspace, linear solve — are implemented over
:class:`fractions.Fraction`.  Matrices are plain lists of lists; sizes in this
project are tiny (loop depths of at most 6–8), so asymptotics are irrelevant
and clarity wins.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Sequence, Tuple, Union

from repro.utils.frac import as_fraction

Number = Union[int, Fraction]
Matrix = Sequence[Sequence[Number]]


def to_fraction_matrix(matrix: Matrix) -> List[List[Fraction]]:
    """Deep-copy *matrix* converting every entry to an exact ``Fraction``."""
    return [[as_fraction(entry) for entry in row] for row in matrix]


def _check_rectangular(matrix: List[List[Fraction]]) -> None:
    if matrix and any(len(row) != len(matrix[0]) for row in matrix):
        raise ValueError("matrix rows must all have the same length")


def row_echelon(matrix: Matrix) -> Tuple[List[List[Fraction]], List[int]]:
    """Reduce to row-echelon form.

    Returns the echelon matrix and the list of pivot column indices.
    """
    work = to_fraction_matrix(matrix)
    _check_rectangular(work)
    if not work:
        return [], []
    rows, cols = len(work), len(work[0])
    pivots: List[int] = []
    pivot_row = 0
    for col in range(cols):
        if pivot_row >= rows:
            break
        # Find a row with a non-zero entry in this column.
        selected = None
        for r in range(pivot_row, rows):
            if work[r][col] != 0:
                selected = r
                break
        if selected is None:
            continue
        work[pivot_row], work[selected] = work[selected], work[pivot_row]
        pivot = work[pivot_row][col]
        work[pivot_row] = [entry / pivot for entry in work[pivot_row]]
        for r in range(rows):
            if r != pivot_row and work[r][col] != 0:
                factor = work[r][col]
                work[r] = [
                    entry - factor * pivot_entry
                    for entry, pivot_entry in zip(work[r], work[pivot_row])
                ]
        pivots.append(col)
        pivot_row += 1
    return work, pivots


def matrix_rank(matrix: Matrix) -> int:
    """Exact rank of a rational matrix."""
    _, pivots = row_echelon(matrix)
    return len(pivots)


def nullspace(matrix: Matrix) -> List[List[Fraction]]:
    """Basis of the (right) nullspace, one basis vector per list entry."""
    work = to_fraction_matrix(matrix)
    _check_rectangular(work)
    if not work:
        return []
    cols = len(work[0])
    echelon, pivots = row_echelon(work)
    free_cols = [c for c in range(cols) if c not in pivots]
    basis: List[List[Fraction]] = []
    for free in free_cols:
        vector = [Fraction(0)] * cols
        vector[free] = Fraction(1)
        for row_index, pivot_col in enumerate(pivots):
            vector[pivot_col] = -echelon[row_index][free]
        basis.append(vector)
    return basis


def solve(matrix: Matrix, rhs: Sequence[Number]) -> Optional[List[Fraction]]:
    """Solve ``matrix @ x = rhs`` exactly.

    Returns one solution (free variables set to zero), or ``None`` when the
    system is inconsistent.
    """
    work = to_fraction_matrix(matrix)
    _check_rectangular(work)
    rhs_vec = [as_fraction(v) for v in rhs]
    if len(work) != len(rhs_vec):
        raise ValueError("rhs length must equal the number of matrix rows")
    if not work:
        return []
    cols = len(work[0])
    augmented = [row + [rhs_vec[i]] for i, row in enumerate(work)]
    echelon, pivots = row_echelon(augmented)
    # Inconsistent if a pivot lands in the augmented column.
    if cols in pivots:
        return None
    solution = [Fraction(0)] * cols
    for row_index, pivot_col in enumerate(pivots):
        solution[pivot_col] = echelon[row_index][cols]
    return solution


def matmul(a: Matrix, b: Matrix) -> List[List[Fraction]]:
    """Exact matrix product ``a @ b``."""
    a_work = to_fraction_matrix(a)
    b_work = to_fraction_matrix(b)
    if not a_work or not b_work:
        return []
    if len(a_work[0]) != len(b_work):
        raise ValueError("inner dimensions do not match")
    result = []
    for row in a_work:
        out_row = []
        for col in range(len(b_work[0])):
            out_row.append(sum(row[k] * b_work[k][col] for k in range(len(b_work))))
        result.append(out_row)
    return result


def identity(size: int) -> List[List[Fraction]]:
    """Exact identity matrix of the given size."""
    return [
        [Fraction(1) if i == j else Fraction(0) for j in range(size)]
        for i in range(size)
    ]


def is_integer_matrix(matrix: Matrix) -> bool:
    """True when every entry is an integer-valued rational."""
    return all(as_fraction(entry).denominator == 1 for row in matrix for entry in row)
