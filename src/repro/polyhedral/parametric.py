"""Parametric per-dimension bounds — the PIP substitute.

The paper uses Feautrier's Parametric Integer Programming (PIP) solver for one
purpose only: obtaining the lower and upper bound of each dimension of a
convex data-space union *as an affine function of the block parameters*
(Algorithm 2, step 8).  Fourier–Motzkin elimination delivers exactly those
bounds: after projecting everything else away, the constraints on a dimension
read ``dim >= affine(params)`` and ``dim <= affine(params)``; when several
candidates remain the true bound is their max (lower) or min (upper), which we
represent with :class:`QuasiAffineBound`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.polyhedral import fourier_motzkin as fm
from repro.polyhedral.affine import AffineExpr
from repro.polyhedral.polyhedron import Polyhedron
from repro.utils.frac import fraction_ceil, fraction_floor

Number = Union[int, Fraction]


@dataclass(frozen=True)
class QuasiAffineBound:
    """``min`` or ``max`` of a set of affine expressions.

    ``kind`` is ``"max"`` for lower bounds (the tightest lower bound of a set
    of candidates) and ``"min"`` for upper bounds, matching the expressions
    CLooG prints as ``max(...)`` / ``min(...)`` in loop bounds.
    """

    kind: str
    exprs: Tuple[AffineExpr, ...]

    def __post_init__(self) -> None:
        if self.kind not in ("min", "max"):
            raise ValueError(f"kind must be 'min' or 'max', got {self.kind!r}")
        if not self.exprs:
            raise ValueError("a quasi-affine bound needs at least one expression")
        object.__setattr__(self, "exprs", tuple(dict.fromkeys(self.exprs)))

    @property
    def is_single(self) -> bool:
        return len(self.exprs) == 1

    def as_single_expr(self) -> AffineExpr:
        """Return the unique expression; raises when the bound is a true min/max."""
        if not self.is_single:
            raise ValueError(f"bound {self} is not a single affine expression")
        return self.exprs[0]

    def evaluate(self, binding: Mapping[str, Number]) -> Fraction:
        values = [expr.evaluate(binding) for expr in self.exprs]
        return min(values) if self.kind == "min" else max(values)

    def evaluate_int(self, binding: Mapping[str, Number]) -> int:
        """Integer bound: lower (max) bounds round up, upper (min) bounds round down."""
        value = self.evaluate(binding)
        return fraction_ceil(value) if self.kind == "max" else fraction_floor(value)

    def is_constant(self) -> bool:
        return all(expr.is_constant() for expr in self.exprs)

    def substitute(self, binding: Mapping[str, Number]) -> "QuasiAffineBound":
        return QuasiAffineBound(
            self.kind, tuple(expr.substitute(binding) for expr in self.exprs)
        )

    def merged_with(self, other: "QuasiAffineBound") -> "QuasiAffineBound":
        if self.kind != other.kind:
            raise ValueError("cannot merge bounds of different kinds")
        return QuasiAffineBound(self.kind, self.exprs + other.exprs)

    def __str__(self) -> str:
        if self.is_single:
            return str(self.exprs[0])
        inner = ", ".join(str(expr) for expr in self.exprs)
        return f"{self.kind}({inner})"


@dataclass(frozen=True)
class ParametricBound:
    """Lower and upper bound of one dimension as functions of the parameters."""

    dim: str
    lower: QuasiAffineBound
    upper: QuasiAffineBound

    def __post_init__(self) -> None:
        if self.lower.kind != "max" or self.upper.kind != "min":
            raise ValueError("lower bound must be a max, upper bound a min")

    def extent_expr(self) -> AffineExpr:
        """``ub - lb + 1`` when both bounds are single affine expressions."""
        return self.upper.as_single_expr() - self.lower.as_single_expr() + 1

    def evaluate(self, binding: Mapping[str, Number]) -> Tuple[int, int]:
        return self.lower.evaluate_int(binding), self.upper.evaluate_int(binding)

    def extent(self, binding: Mapping[str, Number]) -> int:
        low, high = self.evaluate(binding)
        return max(0, high - low + 1)

    def __str__(self) -> str:
        return f"{self.lower} <= {self.dim} <= {self.upper}"


def parametric_bounds(
    polyhedron: Polyhedron, dim: Optional[str] = None
) -> Union[ParametricBound, Dict[str, ParametricBound]]:
    """Parametric bounds of one dimension (or of all dimensions) of a polyhedron.

    Bounds are expressed over the polyhedron's parameters only; all other set
    dimensions are projected away first.  Raises ``ValueError`` when a
    dimension is unbounded.
    """
    if dim is not None:
        return _bounds_for(polyhedron, dim)
    return {name: _bounds_for(polyhedron, name) for name in polyhedron.dims}


def resolve_quasi_affine(
    bound: QuasiAffineBound, context: Optional[Polyhedron] = None
) -> Union[AffineExpr, QuasiAffineBound]:
    """Try to collapse a min/max of affine expressions to a single expression.

    Two resolution strategies are applied in order:

    1. *constant difference* — when all candidates differ pairwise by
       constants the extreme one is known statically;
    2. *context domination* — when a context polyhedron over the free
       variables is given (e.g. ``iT >= 0`` for a tile-origin parameter), a
       candidate that dominates every other candidate over the whole context
       is the bound (this is the "gist" simplification PIP/CLooG perform
       against the parameter context).

    Returns a plain :class:`AffineExpr` on success and the original (deduped)
    bound otherwise.
    """
    if bound.is_single:
        return bound.exprs[0]
    # Strategy 1: constant differences.
    best = bound.exprs[0]
    resolved = True
    for expr in bound.exprs[1:]:
        difference = expr - best
        if not difference.is_constant():
            resolved = False
            break
        if bound.kind == "min" and difference.constant < 0:
            best = expr
        elif bound.kind == "max" and difference.constant > 0:
            best = expr
    if resolved:
        return best
    # Strategy 2: domination over the context.
    if context is None:
        return bound
    from repro.polyhedral.constraints import Constraint

    known = set(context.dims) | set(context.params)
    for candidate in bound.exprs:
        dominates = True
        for other in bound.exprs:
            if other is candidate:
                continue
            free = set(candidate.variables) | set(other.variables)
            if not free <= known:
                dominates = False
                break
            if bound.kind == "max":
                # candidate is the max unless it can be strictly below `other`.
                violation = Constraint.less_equal(candidate - other, -1)
            else:
                violation = Constraint.greater_equal(candidate - other, 1)
            if not context.add_constraints([violation]).is_empty():
                dominates = False
                break
        if dominates:
            return candidate
    return bound


def static_extent_bound(
    lower: QuasiAffineBound,
    upper: QuasiAffineBound,
    context: Optional[Polyhedron] = None,
) -> Optional[int]:
    """A static upper bound on ``upper - lower + 1`` over all parameter values.

    ``min(uppers) - max(lowers) <= u - l`` for every pair, so any pair whose
    difference is a constant (or is bounded over the context) yields a valid
    extent; the smallest such value is returned.  Returns ``None`` when no
    pair is bounded — callers should then fall back to explicit parameter
    values.
    """
    if lower.kind != "max" or upper.kind != "min":
        raise ValueError("expected a lower (max) and an upper (min) bound")
    best: Optional[int] = None
    for up in upper.exprs:
        for low in lower.exprs:
            difference = up - low
            extent: Optional[int] = None
            if difference.is_constant():
                extent = fraction_floor(difference.constant) + 1
            elif context is not None:
                extent = _max_over_context(difference, context)
                if extent is not None:
                    extent += 1
            if extent is not None and (best is None or extent < best):
                best = extent
    if best is not None:
        best = max(best, 0)
    return best


def _max_over_context(expr: AffineExpr, context: Polyhedron) -> Optional[int]:
    """Maximum value of an affine expression over a bounded context, if bounded."""
    from repro.polyhedral.constraints import Constraint
    from repro.polyhedral.image import image_of_polyhedron
    from repro.polyhedral.affine import AffineFunction

    known = set(context.dims) | set(context.params)
    if not set(expr.variables) <= known:
        return None
    # Introduce a fresh dimension equal to the expression and bound it.
    value_dim = "__value"
    combined = Polyhedron(
        tuple(context.dims) + (value_dim,),
        list(context.constraints)
        + [Constraint.equals(AffineExpr.var(value_dim), expr)],
        context.params,
    )
    projected = combined.project_onto([value_dim])
    try:
        bound = _bounds_for(projected, value_dim)
    except ValueError:
        return None
    if not bound.upper.is_constant():
        return None
    values = [e.constant for e in bound.upper.exprs]
    return fraction_floor(min(values))


def _bounds_for(polyhedron: Polyhedron, dim: str) -> ParametricBound:
    if dim not in polyhedron.dims:
        raise ValueError(f"'{dim}' is not a dimension of {polyhedron!r}")
    lowers, uppers = fm.bounds_for_variable(
        polyhedron.constraints, dim, polyhedron.params
    )
    if not lowers:
        raise ValueError(f"dimension '{dim}' has no lower bound in {polyhedron!r}")
    if not uppers:
        raise ValueError(f"dimension '{dim}' has no upper bound in {polyhedron!r}")
    lower_exprs = tuple(expr / coeff for expr, coeff in lowers)
    upper_exprs = tuple(expr / coeff for expr, coeff in uppers)
    return ParametricBound(
        dim,
        QuasiAffineBound("max", lower_exprs),
        QuasiAffineBound("min", upper_exprs),
    )
