"""Polyhedra and polytopes over named dimensions and parameters.

A :class:`Polyhedron` is the intersection of finitely many affine constraints
over two kinds of variables: *set dimensions* (loop iterators or data-space
indices) and *parameters* (problem sizes, tile sizes).  This mirrors the
paper's use of PolyLib: iteration-space polytopes, data spaces (images under
access functions) and dependence polyhedra are all instances of this class.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.polyhedral import fourier_motzkin as fm
from repro.polyhedral.affine import AffineExpr, ExprLike
from repro.polyhedral.constraints import Constraint
from repro.utils.frac import as_fraction, fraction_ceil, fraction_floor

Number = Union[int, Fraction]


class Polyhedron:
    """An intersection of affine constraints over dims and parameters."""

    __slots__ = ("_dims", "_params", "_constraints")

    def __init__(
        self,
        dims: Sequence[str],
        constraints: Iterable[Constraint] = (),
        params: Sequence[str] = (),
    ) -> None:
        dims = tuple(dims)
        params = tuple(params)
        if len(set(dims)) != len(dims):
            raise ValueError(f"duplicate dimension names in {dims}")
        if len(set(params)) != len(params):
            raise ValueError(f"duplicate parameter names in {params}")
        overlap = set(dims) & set(params)
        if overlap:
            raise ValueError(f"names used both as dim and parameter: {sorted(overlap)}")
        known = set(dims) | set(params)
        clean: List[Constraint] = []
        for constraint in constraints:
            unknown = [v for v in constraint.variables if v not in known]
            if unknown:
                raise ValueError(
                    f"constraint '{constraint}' mentions unknown names {unknown}; "
                    f"dims={dims}, params={params}"
                )
            clean.append(constraint)
        self._dims = dims
        self._params = params
        self._constraints = tuple(fm.remove_redundant(clean))

    # -- constructors ------------------------------------------------------
    @classmethod
    def universe(cls, dims: Sequence[str], params: Sequence[str] = ()) -> "Polyhedron":
        """The unconstrained polyhedron over the given dimensions."""
        return cls(dims, (), params)

    @classmethod
    def from_bounds(
        cls,
        bounds: Mapping[str, Tuple[ExprLike, ExprLike]],
        params: Sequence[str] = (),
        dim_order: Optional[Sequence[str]] = None,
    ) -> "Polyhedron":
        """Rectangular polyhedron ``lb <= dim <= ub`` for every entry of *bounds*."""
        dims = tuple(dim_order) if dim_order is not None else tuple(bounds)
        constraints: List[Constraint] = []
        for name, (lower, upper) in bounds.items():
            low_c, up_c = Constraint.bounds(name, lower, upper)
            constraints.extend((low_c, up_c))
        return cls(dims, constraints, params)

    @classmethod
    def empty(cls, dims: Sequence[str], params: Sequence[str] = ()) -> "Polyhedron":
        """A canonical empty polyhedron (contains the contradiction -1 >= 0)."""
        return cls(dims, [Constraint(AffineExpr.const(-1))], params)

    # -- basic accessors ------------------------------------------------------
    @property
    def dims(self) -> Tuple[str, ...]:
        return self._dims

    @property
    def params(self) -> Tuple[str, ...]:
        return self._params

    @property
    def constraints(self) -> Tuple[Constraint, ...]:
        return self._constraints

    @property
    def dim_count(self) -> int:
        return len(self._dims)

    def __repr__(self) -> str:
        dims = ", ".join(self._dims)
        params = ", ".join(self._params)
        body = " and ".join(str(c) for c in self._constraints) or "true"
        prefix = f"[{params}] -> " if params else ""
        return f"{prefix}{{ [{dims}] : {body} }}"

    # -- structural operations ---------------------------------------------------
    def add_constraints(self, constraints: Iterable[Constraint]) -> "Polyhedron":
        """Return a new polyhedron with extra constraints added."""
        return Polyhedron(
            self._dims, list(self._constraints) + list(constraints), self._params
        )

    def intersect(self, other: "Polyhedron") -> "Polyhedron":
        """Intersection; both operands must use the same dimension tuple."""
        if self._dims != other._dims:
            raise ValueError(
                f"cannot intersect polyhedra over different dims: "
                f"{self._dims} vs {other._dims}"
            )
        params = tuple(dict.fromkeys(self._params + other._params))
        return Polyhedron(
            self._dims, list(self._constraints) + list(other._constraints), params
        )

    def rename_dims(self, mapping: Mapping[str, str]) -> "Polyhedron":
        """Rename dimensions (and their occurrences in constraints)."""
        new_dims = tuple(mapping.get(d, d) for d in self._dims)
        constraints = [c.rename(mapping) for c in self._constraints]
        return Polyhedron(new_dims, constraints, self._params)

    def with_dims(self, dims: Sequence[str]) -> "Polyhedron":
        """Re-embed into a space with dimension tuple *dims* (a superset)."""
        missing = [d for d in self._dims if d not in dims]
        if missing:
            raise ValueError(f"target dims {dims} must include existing dims; missing {missing}")
        return Polyhedron(dims, self._constraints, self._params)

    def specialize(self, param_binding: Mapping[str, Number]) -> "Polyhedron":
        """Substitute numeric values for (some) parameters."""
        constraints = [
            c.substitute({k: as_fraction(v) for k, v in param_binding.items()})
            for c in self._constraints
        ]
        params = tuple(p for p in self._params if p not in param_binding)
        return Polyhedron(self._dims, constraints, params)

    def project_out(self, names: Iterable[str]) -> "Polyhedron":
        """Existentially project away the given dims (Fourier–Motzkin)."""
        names = [n for n in names]
        unknown = [n for n in names if n not in self._dims]
        if unknown:
            raise ValueError(f"cannot project out non-dimensions {unknown}")
        constraints = fm.eliminate(self._constraints, names)
        remaining = tuple(d for d in self._dims if d not in names)
        return Polyhedron(remaining, constraints, self._params)

    def project_onto(self, names: Sequence[str]) -> "Polyhedron":
        """Project onto the given dims, dropping all others."""
        drop = [d for d in self._dims if d not in names]
        projected = self.project_out(drop)
        order = tuple(n for n in names if n in projected.dims)
        return Polyhedron(order, projected.constraints, self._params)

    # -- predicates ------------------------------------------------------------
    def is_empty(self) -> bool:
        """Exact *rational* emptiness test.

        For the integer sets manipulated by the framework (iteration domains
        and data spaces with unit-coefficient bounds) rational emptiness
        coincides with integer emptiness; where the distinction matters use
        :meth:`has_integer_point`.
        """
        return fm.is_rationally_infeasible(self._constraints)

    def has_integer_point(self, param_binding: Optional[Mapping[str, Number]] = None) -> bool:
        """True if the (specialised) polyhedron contains at least one integer point."""
        poly = self.specialize(param_binding or {})
        if poly.params:
            raise ValueError(
                f"all parameters must be bound for integer sampling; unbound: {poly.params}"
            )
        if poly.is_empty():
            return False
        return poly.sample_integer_point() is not None

    def contains(self, binding: Mapping[str, Number]) -> bool:
        """Membership test for a fully bound point (dims and parameters)."""
        return all(c.satisfied_by(binding) for c in self._constraints)

    def intersects(self, other: "Polyhedron") -> bool:
        """True when the intersection is (rationally) non-empty."""
        return not self.intersect(other).is_empty()

    def is_subset_of(self, other: "Polyhedron") -> bool:
        """Integer-subset test: every integer point of self satisfies other."""
        if self._dims != other._dims:
            raise ValueError("subset test requires identical dimension tuples")
        if self.is_empty():
            return True
        for constraint in other._constraints:
            for ineq in constraint.as_pair_of_inequalities():
                violated = self.add_constraints([ineq.negate()])
                if not violated.is_empty():
                    # A rational counterexample might still contain no integer
                    # point; only then fall back to the exact integer check.
                    if violated.params or violated._is_obviously_unbounded():
                        return False
                    if violated.sample_integer_point() is not None:
                        return False
        return True

    def equals(self, other: "Polyhedron") -> bool:
        """Integer-set equality."""
        return self.is_subset_of(other) and other.is_subset_of(self)

    def _is_obviously_unbounded(self) -> bool:
        try:
            self.bounding_box()
            return False
        except ValueError:
            return True

    # -- bounds and sampling -------------------------------------------------
    def dim_bound_constraints(self, name: str) -> "Polyhedron":
        """Project onto a single dimension (keeping parameters)."""
        return self.project_onto([name])

    def bounding_box(
        self, param_binding: Optional[Mapping[str, Number]] = None
    ) -> Dict[str, Tuple[int, int]]:
        """Integer bounding box ``{dim: (lb, ub)}`` of the specialised polyhedron.

        Raises ``ValueError`` when a dimension is unbounded or a parameter is
        left unbound but appears in the projected bounds.
        """
        poly = self.specialize(param_binding or {})
        box: Dict[str, Tuple[int, int]] = {}
        for name in poly._dims:
            lowers, uppers = fm.bounds_for_variable(poly._constraints, name, poly._params)
            if not lowers or not uppers:
                raise ValueError(f"dimension '{name}' is unbounded in {poly!r}")
            lower_values: List[Fraction] = []
            upper_values: List[Fraction] = []
            for expr, coeff in lowers:
                if not expr.is_constant():
                    raise ValueError(
                        f"bound of '{name}' depends on unbound parameters: {expr}"
                    )
                lower_values.append(expr.constant / coeff)
            for expr, coeff in uppers:
                if not expr.is_constant():
                    raise ValueError(
                        f"bound of '{name}' depends on unbound parameters: {expr}"
                    )
                upper_values.append(expr.constant / coeff)
            box[name] = (
                fraction_ceil(max(lower_values)),
                fraction_floor(min(upper_values)),
            )
        return box

    def sample_integer_point(
        self, param_binding: Optional[Mapping[str, Number]] = None
    ) -> Optional[Dict[str, int]]:
        """Return one integer point of the polyhedron, or ``None`` if there is none.

        Uses a straightforward recursive search over per-dimension bounds; the
        sets handled by the framework are small enough for this to be instant.
        """
        poly = self.specialize(param_binding or {})
        if poly.params:
            raise ValueError(f"parameters must be bound for sampling: {poly.params}")
        if poly.is_empty():
            return None
        return poly._search_point({}, list(poly._dims))

    def _search_point(
        self, partial: Dict[str, int], remaining: List[str]
    ) -> Optional[Dict[str, int]]:
        if not remaining:
            return dict(partial) if self.contains(partial) else None
        name = remaining[0]
        constraints = [c.substitute(partial) for c in self._constraints]
        if any(c.is_trivially_false() for c in constraints):
            return None
        lowers, uppers = fm.bounds_for_variable(constraints, name, [])
        lower_values = [expr.constant / coeff for expr, coeff in lowers if expr.is_constant()]
        upper_values = [expr.constant / coeff for expr, coeff in uppers if expr.is_constant()]
        if not lower_values or not upper_values:
            if fm.is_rationally_infeasible(constraints):
                return None
            raise ValueError(f"dimension '{name}' is unbounded; cannot sample")
        low = fraction_ceil(max(lower_values))
        high = fraction_floor(min(upper_values))
        for value in range(low, high + 1):
            partial[name] = value
            found = self._search_point(partial, remaining[1:])
            if found is not None:
                return found
            del partial[name]
        return None

    # -- enumeration (delegates to counting, kept here for convenience) ----------
    def integer_points(
        self, param_binding: Optional[Mapping[str, Number]] = None
    ) -> Iterator[Dict[str, int]]:
        """Iterate over all integer points (requires bounded, fully specialised set)."""
        from repro.polyhedral.counting import enumerate_integer_points

        return enumerate_integer_points(self, param_binding)

    def count_points(self, param_binding: Optional[Mapping[str, Number]] = None) -> int:
        """Number of integer points (requires bounded, fully specialised set)."""
        from repro.polyhedral.counting import count_integer_points

        return count_integer_points(self, param_binding)

    # -- equality-as-value ---------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polyhedron):
            return NotImplemented
        return (
            self._dims == other._dims
            and self._params == other._params
            and set(self._constraints) == set(other._constraints)
        )

    def __hash__(self) -> int:
        return hash((self._dims, self._params, frozenset(self._constraints)))
