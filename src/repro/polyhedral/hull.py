"""Convex and rectangular unions of data spaces.

Algorithm 2 of the paper encloses each partition of accessed data spaces in
its *convex union* and then only ever uses the per-dimension lower/upper
bounds of that hull to size the local buffer and to compute the remapping
offset ``g``.  Two constructions are provided:

* :func:`rectangular_hull` — the bounding box of the union with parametric
  per-dimension bounds.  Because the buffer size and offsets depend only on
  per-dimension bounds, the rectangular hull allocates exactly the same buffer
  the paper's convex union would, while remaining well-defined for parametric
  data spaces (tile-origin parameters).  When the lower bounds of different
  member spaces are incomparable symbolically, the hull is conservative
  (never smaller than the true union box), which preserves correctness of the
  allocation and of the remapped accesses.

* :func:`convex_union_vertices` — the true convex hull of the union for fully
  specialised (non-parametric) spaces, used by tests and by the worked
  example of Fig. 1.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.polyhedral.counting import enumerate_integer_points
from repro.utils.frac import fraction_floor
from repro.polyhedral.parametric import ParametricBound, QuasiAffineBound, parametric_bounds
from repro.polyhedral.polyhedron import Polyhedron

Number = Union[int, Fraction]


class RectangularHull:
    """Bounding box of a union of polyhedra with parametric bounds.

    ``context`` — an optional polyhedron over the parameters (e.g. tile-origin
    ranges ``0 <= iT <= N-1``) — is used to resolve per-member ``max``/``min``
    bounds to single affine expressions, mirroring the "gist against context"
    simplification PIP and CLooG apply.
    """

    def __init__(
        self, members: Sequence[Polyhedron], context: Optional[Polyhedron] = None
    ) -> None:
        self._context = context
        if not members:
            raise ValueError("a hull needs at least one member polyhedron")
        dims = members[0].dims
        for poly in members:
            if poly.dims != dims:
                raise ValueError(
                    f"all member polyhedra must share dimensions; "
                    f"{poly.dims} differs from {dims}"
                )
        self._members = tuple(members)
        self._dims = dims
        self._params = tuple(
            dict.fromkeys(name for poly in members for name in poly.params)
        )
        self._member_bounds: List[Dict[str, ParametricBound]] = [
            parametric_bounds(poly) for poly in members
        ]

    # -- accessors --------------------------------------------------------------
    @property
    def dims(self) -> Tuple[str, ...]:
        return self._dims

    @property
    def params(self) -> Tuple[str, ...]:
        return self._params

    @property
    def members(self) -> Tuple[Polyhedron, ...]:
        return self._members

    # -- symbolic bounds ----------------------------------------------------------
    def lower_bound(self, dim: str) -> QuasiAffineBound:
        """Conservative lower bound of the union along *dim* (a ``min`` of affines)."""
        exprs = []
        for bounds in self._member_bounds:
            exprs.extend(bounds[dim].lower.exprs)
        return QuasiAffineBound("min", tuple(exprs))

    def upper_bound(self, dim: str) -> QuasiAffineBound:
        """Conservative upper bound of the union along *dim* (a ``max`` of affines)."""
        exprs = []
        for bounds in self._member_bounds:
            exprs.extend(bounds[dim].upper.exprs)
        return QuasiAffineBound("max", tuple(exprs))

    @property
    def member_bounds(self) -> List[Dict[str, ParametricBound]]:
        """Per-member parametric bounds (one dict per member polyhedron)."""
        return [dict(bounds) for bounds in self._member_bounds]

    def resolved_lower_bound(self, dim: str):
        """Lower bound of the union along *dim*, resolved as far as possible.

        Each member's own lower bound (a ``max``) is first resolved against
        the context; the union bound is then the ``min`` of the per-member
        bounds, itself resolved if possible.  The result is an
        :class:`AffineExpr` when fully resolved, otherwise a
        :class:`QuasiAffineBound` with ``min`` semantics.  When a member's own
        bound cannot be resolved its candidates are flattened into the
        ``min``, which is conservative (never larger than the true lower
        bound) and therefore safe for buffer allocation.
        """
        from repro.polyhedral.parametric import resolve_quasi_affine

        per_member = []
        for bounds in self._member_bounds:
            resolved = resolve_quasi_affine(bounds[dim].lower, self._context)
            if isinstance(resolved, QuasiAffineBound):
                per_member.extend(resolved.exprs)
            else:
                per_member.append(resolved)
        return resolve_quasi_affine(
            QuasiAffineBound("min", tuple(per_member)), self._context
        )

    def resolved_upper_bound(self, dim: str):
        """Upper bound of the union along *dim* (see :meth:`resolved_lower_bound`).

        Unresolvable member bounds flatten their candidates into the ``max``,
        which is conservative (never smaller than the true upper bound).
        """
        from repro.polyhedral.parametric import resolve_quasi_affine

        per_member = []
        for bounds in self._member_bounds:
            resolved = resolve_quasi_affine(bounds[dim].upper, self._context)
            if isinstance(resolved, QuasiAffineBound):
                per_member.extend(resolved.exprs)
            else:
                per_member.append(resolved)
        return resolve_quasi_affine(
            QuasiAffineBound("max", tuple(per_member)), self._context
        )

    def allocation_extent(self, dim: str, offset) -> Optional[int]:
        """Static buffer extent along *dim* for a chosen remap offset.

        Given the offset actually used to remap accesses (the result of
        :meth:`resolved_lower_bound`), returns a static upper bound on
        ``max(accessed index) - offset + 1``, i.e. the number of buffer
        elements needed along this dimension.  Using the *same* offset for
        allocation, remapping and copy code keeps the three consistent even
        when the offset is conservative.  Returns ``None`` when no static
        bound exists (callers must then supply parameter values).
        """
        from repro.polyhedral.parametric import _max_over_context

        if isinstance(offset, QuasiAffineBound):
            if offset.kind != "min":
                raise ValueError("a remap offset must have 'min' semantics")
            offset_candidates = list(offset.exprs)
        else:
            offset_candidates = [offset]

        worst: Optional[int] = None
        for bounds in self._member_bounds:
            member_value: Optional[int] = None
            for upper_expr in bounds[dim].upper.exprs:
                # offset = min(candidates)  =>  upper - offset = max_c (upper - c)
                candidate_value: Optional[int] = 0
                for candidate in offset_candidates:
                    difference = upper_expr - candidate
                    if difference.is_constant():
                        value = fraction_floor(difference.constant)
                    elif self._context is not None:
                        value = _max_over_context(difference, self._context)
                    else:
                        value = None
                    if value is None:
                        candidate_value = None
                        break
                    candidate_value = max(candidate_value, value)
                if candidate_value is None:
                    continue
                if member_value is None or candidate_value < member_value:
                    member_value = candidate_value
            if member_value is None:
                return None
            if worst is None or member_value > worst:
                worst = member_value
        if worst is None:
            return None
        return max(worst + 1, 0)

    def static_extent(self, dim: str) -> Optional[int]:
        """A static (parameter-independent) upper bound on the extent along *dim*.

        The union's extent is ``max_m(ub_m) - min_m(lb_m) + 1`` over members
        ``m``; it is bounded by maximising, over ordered member pairs
        ``(m1, m2)``, a static bound on ``ub_{m1} - lb_{m2} + 1`` (each of
        which :func:`static_extent_bound` delivers from the per-candidate
        differences).  Returns ``None`` when any pair is unbounded without
        parameter values.
        """
        from repro.polyhedral.parametric import static_extent_bound

        worst: Optional[int] = None
        for upper_member in self._member_bounds:
            for lower_member in self._member_bounds:
                pair_extent = static_extent_bound(
                    lower_member[dim].lower, upper_member[dim].upper, self._context
                )
                if pair_extent is None:
                    return None
                if worst is None or pair_extent > worst:
                    worst = pair_extent
        return worst

    def extent_exprs(self) -> Optional[List]:
        """Per-dimension symbolic extents ``ub - lb + 1`` when bounds are single affine.

        Returns ``None`` when any dimension requires a genuine min/max.
        """
        extents = []
        for dim in self._dims:
            low = self.lower_bound(dim)
            high = self.upper_bound(dim)
            if not (low.is_single and high.is_single):
                return None
            extents.append(high.as_single_expr() - low.as_single_expr() + 1)
        return extents

    # -- numeric evaluation ---------------------------------------------------------
    def evaluate_box(
        self, param_binding: Optional[Mapping[str, Number]] = None
    ) -> Dict[str, Tuple[int, int]]:
        """Exact integer bounding box of the union for bound parameter values.

        Evaluation is exact (per-member boxes are combined numerically) even
        when the symbolic bounds are conservative.
        """
        binding = dict(param_binding or {})
        box: Dict[str, Tuple[int, int]] = {}
        for dim in self._dims:
            lows: List[int] = []
            highs: List[int] = []
            for bounds in self._member_bounds:
                low, high = bounds[dim].evaluate(binding)
                if high >= low:
                    lows.append(low)
                    highs.append(high)
            if not lows:
                box[dim] = (0, -1)
            else:
                box[dim] = (min(lows), max(highs))
        return box

    def extents(self, param_binding: Optional[Mapping[str, Number]] = None) -> Dict[str, int]:
        """Per-dimension extents (``0`` for empty) for bound parameter values."""
        return {
            dim: max(0, high - low + 1)
            for dim, (low, high) in self.evaluate_box(param_binding).items()
        }

    def footprint(self, param_binding: Optional[Mapping[str, Number]] = None) -> int:
        """Number of buffer elements the hull allocates (product of extents)."""
        total = 1
        for extent in self.extents(param_binding).values():
            total *= extent
        return total

    def box_polyhedron(
        self, param_binding: Optional[Mapping[str, Number]] = None
    ) -> Polyhedron:
        """The bounding box as a (non-parametric) polyhedron."""
        box = self.evaluate_box(param_binding)
        return Polyhedron.from_bounds(
            {dim: (low, high) for dim, (low, high) in box.items()},
            dim_order=self._dims,
        )

    def __repr__(self) -> str:
        bounds = ", ".join(
            f"{self.lower_bound(d)} <= {d} <= {self.upper_bound(d)}" for d in self._dims
        )
        return f"RectangularHull({bounds})"


def rectangular_hull(
    members: Sequence[Polyhedron], context: Optional[Polyhedron] = None
) -> RectangularHull:
    """Bounding-box hull of a union of polyhedra (see module docstring)."""
    return RectangularHull(members, context)


def convex_union_vertices(
    members: Sequence[Polyhedron],
    param_binding: Optional[Mapping[str, Number]] = None,
) -> np.ndarray:
    """Vertices of the convex hull of the union of fully specialised polyhedra.

    Returns an array of shape ``(n_vertices, n_dims)`` in the dimension order
    of the first member.  For one-dimensional spaces the two extreme points
    are returned.  Intended for analysis and tests rather than for the hot
    compilation path.
    """
    if not members:
        raise ValueError("need at least one polyhedron")
    dims = members[0].dims
    points: List[Tuple[int, ...]] = []
    for poly in members:
        if poly.dims != dims:
            raise ValueError("all members must share the same dimensions")
        for point in enumerate_integer_points(poly, param_binding):
            points.append(tuple(point[d] for d in dims))
    if not points:
        return np.empty((0, len(dims)), dtype=np.int64)
    unique = np.unique(np.array(points, dtype=np.int64), axis=0)
    if len(dims) == 1 or unique.shape[0] <= 2:
        low = unique.min(axis=0)
        high = unique.max(axis=0)
        if np.array_equal(low, high):
            return low.reshape(1, -1)
        return np.stack([low, high])
    try:
        from scipy.spatial import ConvexHull, QhullError
    except ImportError:  # pragma: no cover - scipy is a hard dependency
        return unique
    try:
        hull = ConvexHull(unique)
    except QhullError:
        # Degenerate (e.g. collinear) point sets: fall back to the box corners.
        low = unique.min(axis=0)
        high = unique.max(axis=0)
        return np.unique(np.stack([low, high]), axis=0)
    return unique[hull.vertices]
