"""Data-dependence analysis in the polyhedral model.

A dependence exists between two statement instances when both lie in their
iteration domains, they access the same array element, at least one access is
a write, and the source instance executes before the target instance.  All of
these conditions are affine, so every dependence is captured by a *dependence
polyhedron* over the concatenated (renamed) source and target iteration
vectors — exactly the representation the paper relies on for tiling legality
(Section 4) and for the copy-in/copy-out minimisation of Section 3.1.4.

The analyzer is deliberately decoupled from the IR package: it consumes plain
:class:`AccessDescriptor` records so it can be exercised and tested on its
own.  :mod:`repro.ir` provides the adapter that produces these records from a
program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.polyhedral.affine import AffineExpr, AffineFunction
from repro.polyhedral.constraints import Constraint
from repro.polyhedral.polyhedron import Polyhedron

Number = Union[int, Fraction]

SOURCE_PREFIX = "s$"
TARGET_PREFIX = "t$"

FLOW = "flow"      # write -> read  (true dependence)
ANTI = "anti"      # read  -> write
OUTPUT = "output"  # write -> write


@dataclass(frozen=True)
class AccessDescriptor:
    """One array access of one statement, as seen by the dependence analyzer.

    Attributes
    ----------
    statement:
        Name of the statement performing the access.
    array:
        Name of the accessed array.
    function:
        Affine access function from the statement's iteration space to the
        array's data space.
    domain:
        Iteration domain of the statement; its dims must match
        ``function.inputs`` order-wise for the shared (outer) loops.
    is_write:
        True for write accesses.
    textual_position:
        Position of the statement in the original program text, used to order
        loop-independent dependences.
    """

    statement: str
    array: str
    function: AffineFunction
    domain: Polyhedron
    is_write: bool
    textual_position: int = 0


@dataclass(frozen=True)
class Dependence:
    """A dependence edge between two accesses, carried at a given loop level.

    ``level`` is 1-based: level ``k`` means the dependence is carried by the
    ``k``-th common surrounding loop (source and target agree on the first
    ``k - 1`` common iterators and differ at the ``k``-th).  ``level == 0``
    denotes a loop-independent dependence (all common iterators equal, source
    textually precedes target).
    """

    kind: str
    source: AccessDescriptor
    target: AccessDescriptor
    level: int
    polyhedron: Polyhedron
    common_loops: Tuple[str, ...]

    @property
    def is_loop_independent(self) -> bool:
        return self.level == 0

    @property
    def carrying_loop(self) -> Optional[str]:
        if self.level == 0:
            return None
        return self.common_loops[self.level - 1]

    def source_dim(self, name: str) -> str:
        return SOURCE_PREFIX + name

    def target_dim(self, name: str) -> str:
        return TARGET_PREFIX + name

    def allows_negative_component(self, loop: str) -> bool:
        """Can ``target[loop] - source[loop]`` be negative on this dependence?

        Used by the permutability test: a band of loops is fully permutable
        when no dependence carried within the band has a negative component
        along any loop of the band.
        """
        if loop not in self.common_loops:
            return False
        delta_negative = Constraint.less_equal(
            AffineExpr.var(self.target_dim(loop)) - AffineExpr.var(self.source_dim(loop)),
            -1,
        )
        return not self.polyhedron.add_constraints([delta_negative]).is_empty()

    def distance_vector(
        self, param_binding: Optional[Mapping[str, Number]] = None
    ) -> Optional[Tuple[Optional[int], ...]]:
        """Per-common-loop constant distances, ``None`` entries when not constant.

        Returns ``None`` if the (specialised) dependence polyhedron is empty.
        """
        poly = self.polyhedron.specialize(param_binding or {})
        if poly.is_empty():
            return None
        distances: List[Optional[int]] = []
        for loop in self.common_loops:
            delta = AffineExpr.var(self.target_dim(loop)) - AffineExpr.var(
                self.source_dim(loop)
            )
            value = _constant_value_of(poly, delta)
            distances.append(value)
        return tuple(distances)

    def __str__(self) -> str:
        carried = "loop-independent" if self.level == 0 else f"level {self.level}"
        return (
            f"{self.kind} dependence {self.source.statement} -> "
            f"{self.target.statement} on {self.source.array} ({carried})"
        )


def _constant_value_of(poly: Polyhedron, expr: AffineExpr) -> Optional[int]:
    """If *expr* takes a single integer value over *poly*, return it."""
    for candidate in range(-4, 5):
        higher = poly.add_constraints(
            [Constraint.greater_equal(expr, candidate + 1)]
        )
        lower = poly.add_constraints([Constraint.less_equal(expr, candidate - 1)])
        equal = poly.add_constraints([Constraint.equals(expr, candidate)])
        if not equal.is_empty() and higher.is_empty() and lower.is_empty():
            return candidate
    return None


class DependenceAnalyzer:
    """Computes all pairwise dependences among a set of array accesses."""

    def __init__(self, accesses: Sequence[AccessDescriptor]) -> None:
        self._accesses = list(accesses)

    # -- public API ---------------------------------------------------------------
    def dependences(
        self, kinds: Sequence[str] = (FLOW, ANTI, OUTPUT)
    ) -> List[Dependence]:
        """All dependences of the requested kinds, one per carried level."""
        result: List[Dependence] = []
        for source in self._accesses:
            for target in self._accesses:
                kind = self._classify(source, target)
                if kind is None or kind not in kinds:
                    continue
                result.extend(self._dependences_between(kind, source, target))
        return result

    def flow_dependences(self) -> List[Dependence]:
        """True (read-after-write) dependences only."""
        return self.dependences(kinds=(FLOW,))

    def loops_carrying_dependences(self) -> Dict[str, List[Dependence]]:
        """Map from loop iterator name to the dependences it carries."""
        carried: Dict[str, List[Dependence]] = {}
        for dep in self.dependences():
            loop = dep.carrying_loop
            if loop is not None:
                carried.setdefault(loop, []).append(dep)
        return carried

    def is_loop_parallel(self, loop: str) -> bool:
        """A loop is parallel when it carries no dependence."""
        return loop not in self.loops_carrying_dependences()

    # -- internals -------------------------------------------------------------------
    @staticmethod
    def _classify(source: AccessDescriptor, target: AccessDescriptor) -> Optional[str]:
        if source.array != target.array:
            return None
        if source.is_write and not target.is_write:
            return FLOW
        if not source.is_write and target.is_write:
            return ANTI
        if source.is_write and target.is_write:
            return OUTPUT
        return None

    def _dependences_between(
        self, kind: str, source: AccessDescriptor, target: AccessDescriptor
    ) -> List[Dependence]:
        common = _common_loops(source, target)
        base, params = self._conflict_polyhedron(source, target)
        if base is None:
            return []
        result: List[Dependence] = []
        # Carried at each possible common-loop level.
        for level in range(1, len(common) + 1):
            constraints = []
            for loop in common[: level - 1]:
                constraints.append(
                    Constraint.equals(
                        AffineExpr.var(TARGET_PREFIX + loop),
                        AffineExpr.var(SOURCE_PREFIX + loop),
                    )
                )
            carried_loop = common[level - 1]
            constraints.append(
                Constraint.greater_equal(
                    AffineExpr.var(TARGET_PREFIX + carried_loop)
                    - AffineExpr.var(SOURCE_PREFIX + carried_loop),
                    1,
                )
            )
            poly = base.add_constraints(constraints)
            if not poly.is_empty():
                result.append(
                    Dependence(kind, source, target, level, poly, tuple(common))
                )
        # Loop-independent dependence: equal on all common loops, textual order.
        if source.textual_position < target.textual_position or (
            source.textual_position == target.textual_position
            and source.statement != target.statement
        ):
            constraints = [
                Constraint.equals(
                    AffineExpr.var(TARGET_PREFIX + loop),
                    AffineExpr.var(SOURCE_PREFIX + loop),
                )
                for loop in common
            ]
            poly = base.add_constraints(constraints)
            if not poly.is_empty():
                result.append(Dependence(kind, source, target, 0, poly, tuple(common)))
        return result

    @staticmethod
    def _conflict_polyhedron(
        source: AccessDescriptor, target: AccessDescriptor
    ) -> Tuple[Optional[Polyhedron], Tuple[str, ...]]:
        """Both instances in their domains and touching the same array element."""
        if source.function.output_dim != target.function.output_dim:
            return None, ()
        src_domain = source.domain.rename_dims(
            {d: SOURCE_PREFIX + d for d in source.domain.dims}
        )
        tgt_domain = target.domain.rename_dims(
            {d: TARGET_PREFIX + d for d in target.domain.dims}
        )
        dims = tuple(src_domain.dims) + tuple(tgt_domain.dims)
        params = tuple(dict.fromkeys(src_domain.params + tgt_domain.params))
        constraints = list(src_domain.constraints) + list(tgt_domain.constraints)
        src_fn = source.function.rename_inputs(
            {d: SOURCE_PREFIX + d for d in source.function.inputs}
        )
        tgt_fn = target.function.rename_inputs(
            {d: TARGET_PREFIX + d for d in target.function.inputs}
        )
        for src_expr, tgt_expr in zip(src_fn.outputs, tgt_fn.outputs):
            constraints.append(Constraint.equals(src_expr, tgt_expr))
        poly = Polyhedron(dims, constraints, params)
        if poly.is_empty():
            return None, params
        return poly, params


def _common_loops(source: AccessDescriptor, target: AccessDescriptor) -> List[str]:
    """Shared outermost loop iterators, by name, in domain order."""
    common: List[str] = []
    for src_dim, tgt_dim in zip(source.domain.dims, target.domain.dims):
        if src_dim == tgt_dim:
            common.append(src_dim)
        else:
            break
    return common
