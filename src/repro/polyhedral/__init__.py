"""Exact polyhedral substrate (PolyLib / PIP / CLooG-backend replacement).

This subpackage implements, from scratch and over exact rational arithmetic,
the polyhedral operations the paper's framework relies on:

* affine expressions and affine functions (:mod:`repro.polyhedral.affine`),
* polyhedra/polytopes defined by affine constraints
  (:mod:`repro.polyhedral.polyhedron`),
* Fourier--Motzkin projection (:mod:`repro.polyhedral.fourier_motzkin`),
* images of polyhedra under affine functions (:mod:`repro.polyhedral.image`),
* convex/rectangular unions of data spaces (:mod:`repro.polyhedral.hull`),
* integer-point enumeration and counting (:mod:`repro.polyhedral.counting`),
* parametric per-dimension bounds, the PIP substitute
  (:mod:`repro.polyhedral.parametric`), and
* dependence polyhedra (:mod:`repro.polyhedral.dependence`).
"""

from repro.polyhedral.affine import AffineExpr, AffineFunction
from repro.polyhedral.constraints import Constraint
from repro.polyhedral.polyhedron import Polyhedron
from repro.polyhedral.image import image_of_polyhedron, preimage_of_polyhedron
from repro.polyhedral.hull import rectangular_hull, convex_union_vertices
from repro.polyhedral.counting import count_integer_points, enumerate_integer_points
from repro.polyhedral.parametric import parametric_bounds, ParametricBound, QuasiAffineBound
from repro.polyhedral.dependence import Dependence, DependenceAnalyzer

__all__ = [
    "AffineExpr",
    "AffineFunction",
    "Constraint",
    "Polyhedron",
    "image_of_polyhedron",
    "preimage_of_polyhedron",
    "rectangular_hull",
    "convex_union_vertices",
    "count_integer_points",
    "enumerate_integer_points",
    "parametric_bounds",
    "ParametricBound",
    "QuasiAffineBound",
    "Dependence",
    "DependenceAnalyzer",
]
