"""Affine constraints (equalities and inequalities) over named variables.

A :class:`Constraint` wraps an :class:`~repro.polyhedral.affine.AffineExpr`
``e`` and means either ``e >= 0`` (inequality) or ``e == 0`` (equality).
Constraints are normalised to integer coefficients divided by their gcd so
that syntactically equal constraints compare and hash equal — this is what
keeps Fourier–Motzkin elimination from drowning in duplicates.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.polyhedral.affine import AffineExpr, ExprLike
from repro.utils.frac import as_fraction, gcd_many, lcm_many

Number = Union[int, Fraction]


@dataclass(frozen=True)
class Constraint:
    """``expr >= 0`` (default) or ``expr == 0`` over named variables."""

    expr: AffineExpr
    is_equality: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "expr", self._normalise(self.expr, self.is_equality))

    @staticmethod
    def _normalise(expr: AffineExpr, is_equality: bool) -> AffineExpr:
        coeffs = expr.coefficients
        constant = expr.constant
        denominators = [c.denominator for c in coeffs.values()] + [constant.denominator]
        scale = Fraction(lcm_many(denominators))
        coeffs = {k: v * scale for k, v in coeffs.items()}
        constant = constant * scale
        numerators = [abs(int(c)) for c in coeffs.values()] + [abs(int(constant))]
        divisor = gcd_many(numerators)
        if divisor > 1:
            coeffs = {k: v / divisor for k, v in coeffs.items()}
            constant = constant / divisor
        # Canonical sign for equalities: first non-zero coefficient positive.
        if is_equality:
            ordered = sorted(coeffs)
            flip = False
            for name in ordered:
                if coeffs[name] != 0:
                    flip = coeffs[name] < 0
                    break
            else:
                flip = constant < 0
            if flip:
                coeffs = {k: -v for k, v in coeffs.items()}
                constant = -constant
        return AffineExpr(coeffs, constant)

    # -- constructors ---------------------------------------------------------
    @classmethod
    def greater_equal(cls, lhs: ExprLike, rhs: ExprLike = 0) -> "Constraint":
        """Constraint ``lhs >= rhs``."""
        return cls(AffineExpr.coerce(lhs) - AffineExpr.coerce(rhs), is_equality=False)

    @classmethod
    def less_equal(cls, lhs: ExprLike, rhs: ExprLike = 0) -> "Constraint":
        """Constraint ``lhs <= rhs``."""
        return cls(AffineExpr.coerce(rhs) - AffineExpr.coerce(lhs), is_equality=False)

    @classmethod
    def equals(cls, lhs: ExprLike, rhs: ExprLike = 0) -> "Constraint":
        """Constraint ``lhs == rhs``."""
        return cls(AffineExpr.coerce(lhs) - AffineExpr.coerce(rhs), is_equality=True)

    @classmethod
    def bounds(cls, name: str, lower: ExprLike, upper: ExprLike) -> Tuple["Constraint", "Constraint"]:
        """The pair ``name >= lower`` and ``name <= upper``."""
        var = AffineExpr.var(name)
        return cls.greater_equal(var, lower), cls.less_equal(var, upper)

    # -- inspection -------------------------------------------------------------
    @property
    def variables(self) -> Tuple[str, ...]:
        return self.expr.variables

    def coefficient(self, name: str) -> Fraction:
        return self.expr.coefficient(name)

    def involves(self, names: Iterable[str]) -> bool:
        return self.expr.depends_on(names)

    def is_trivially_true(self) -> bool:
        """Constant constraint that always holds (e.g. ``3 >= 0`` or ``0 == 0``)."""
        if not self.expr.is_constant():
            return False
        if self.is_equality:
            return self.expr.constant == 0
        return self.expr.constant >= 0

    def is_trivially_false(self) -> bool:
        """Constant constraint that can never hold (e.g. ``-1 >= 0``)."""
        if not self.expr.is_constant():
            return False
        if self.is_equality:
            return self.expr.constant != 0
        return self.expr.constant < 0

    # -- evaluation / substitution ------------------------------------------------
    def satisfied_by(self, binding: Mapping[str, Number]) -> bool:
        """Check the constraint at a fully bound point."""
        value = self.expr.evaluate(binding)
        return value == 0 if self.is_equality else value >= 0

    def substitute(self, binding: Mapping[str, ExprLike]) -> "Constraint":
        return Constraint(self.expr.substitute(binding), self.is_equality)

    def rename(self, mapping: Mapping[str, str]) -> "Constraint":
        return Constraint(self.expr.rename(mapping), self.is_equality)

    def negate(self) -> "Constraint":
        """Integer negation of an inequality: ``e >= 0`` becomes ``-e - 1 >= 0``.

        Only valid for integer points; equalities cannot be negated into a
        single convex constraint and raise ``ValueError``.
        """
        if self.is_equality:
            raise ValueError("the negation of an equality is not a single constraint")
        return Constraint(-self.expr - 1, is_equality=False)

    def as_pair_of_inequalities(self) -> Tuple["Constraint", ...]:
        """Equalities become (e >= 0, -e >= 0); inequalities are returned as-is."""
        if not self.is_equality:
            return (self,)
        return (
            Constraint(self.expr, is_equality=False),
            Constraint(-self.expr, is_equality=False),
        )

    def __str__(self) -> str:
        op = "==" if self.is_equality else ">="
        return f"{self.expr} {op} 0"
