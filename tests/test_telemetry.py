"""Tests of ``repro.telemetry``: metrics registry, span tracing, /metrics.

Unit suites exercise registry and collector semantics on private instances;
the integration suites run real ``autotune()`` calls and a live HTTP server
and assert the wiring promises: the analysis stage traces exactly once per
request, worker-side spans survive the pickle boundary, ``/metrics`` renders
parseable Prometheus text, and disabled telemetry costs (approximately)
nothing.
"""

from __future__ import annotations

import pickle
import time

import pytest

from repro.kernels import build_matmul_program
from repro.telemetry import (
    METRICS,
    MetricsRegistry,
    Span,
    load_trace,
    parse_prometheus_text,
    render_hotspots,
    render_tree,
    save_trace,
    summarize_spans,
    to_chrome_trace,
    to_jsonl,
    trace,
)
from repro.telemetry.trace import NULL_SPAN
from repro.autotune import ConfigurationEvaluator, ConfigurationSpace, SpaceOptions, autotune
from repro.compiler import CompilationSession
from repro.service import TuneRequest, TuningClient, TuningServer
from repro.service.protocol import JobRecord
from repro.service.worker import execute_request

SMALL_SPACE = SpaceOptions(
    thread_counts=(64,), block_counts=(16,), tile_candidates_per_geometry=2
)
SMALL_SPACE_DICT = {
    "thread_counts": [64],
    "block_counts": [16],
    "tile_candidates_per_geometry": 2,
}


# -- metrics registry --------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_labels_and_render(self):
        registry = MetricsRegistry()
        runs = registry.counter("stage_runs_total", "runs", labels=("stage",))
        runs.inc(stage="tiling")
        runs.inc(2, stage="tiling")
        runs.inc(stage="analysis")
        assert runs.value(stage="tiling") == 3.0
        parsed = parse_prometheus_text(registry.render())
        assert parsed["stage_runs_total"][(("stage", "tiling"),)] == 3.0
        assert parsed["stage_runs_total"][(("stage", "analysis"),)] == 1.0

    def test_unlabeled_counter_renders_at_zero(self):
        """The CI grep contract: a registered counter is scrapeable before use."""
        registry = MetricsRegistry()
        registry.counter("cache_hits_total", "hits")
        parsed = parse_prometheus_text(registry.render())
        assert parsed["cache_hits_total"][()] == 0.0

    def test_counter_rejects_decrease_and_label_mismatch(self):
        registry = MetricsRegistry()
        counter = registry.counter("total", labels=("kind",))
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1, kind="model")
        with pytest.raises(ValueError, match="takes labels"):
            counter.inc(backend="model")

    def test_registration_is_idempotent_but_strict(self):
        registry = MetricsRegistry()
        first = registry.counter("requests_total", labels=("source",))
        assert registry.counter("requests_total", labels=("source",)) is first
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("requests_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("requests_total", labels=("kind",))

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("pass_seconds", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            hist.observe(value)
        parsed = parse_prometheus_text(registry.render())
        buckets = parsed["pass_seconds_bucket"]
        assert buckets[(("le", "0.01"),)] == 1.0
        assert buckets[(("le", "0.1"),)] == 2.0
        assert buckets[(("le", "1"),)] == 3.0
        assert buckets[(("le", "+Inf"),)] == 4.0
        assert parsed["pass_seconds_count"][()] == 4.0
        assert parsed["pass_seconds_sum"][()] == pytest.approx(5.555)

    def test_delta_and_absorb_merge_counters_and_histograms(self):
        """The worker → server shipping path: deltas add, gauges are skipped."""
        worker = MetricsRegistry()
        counter = worker.counter("compiles_total")
        hist = worker.histogram("seconds", buckets=(1.0, 10.0))
        gauge = worker.gauge("inflight")
        counter.inc(5)
        baseline = worker.snapshot()
        counter.inc(3)
        hist.observe(0.5)
        gauge.set(7)
        delta = worker.delta_since(baseline)
        assert "inflight" not in delta
        server = MetricsRegistry()
        server.counter("compiles_total").inc(100)
        server.absorb(delta)
        server.absorb(worker.delta_since(worker.snapshot()))  # empty delta: no-op
        assert server.get("compiles_total").value() == 103.0
        assert server.get("seconds").count() == 1.0

    def test_parse_rejects_malformed_exposition(self):
        with pytest.raises(ValueError, match="malformed sample"):
            parse_prometheus_text("this is { not prometheus\n")
        with pytest.raises(ValueError, match="non-numeric"):
            parse_prometheus_text("metric_total lots\n")
        with pytest.raises(ValueError, match="bad TYPE"):
            parse_prometheus_text("# TYPE metric_total speedometer\n")

    def test_global_registry_serves_the_documented_names(self):
        """Importing the stack registers the metric table from the docs."""
        import repro.service.server  # noqa: F401 - registers service metrics
        for name in (
            "repro_compiles_total",
            "repro_stage_runs_total",
            "repro_pass_seconds",
            "repro_cache_hits_total",
            "repro_cache_misses_total",
            "repro_measurements_total",
            "repro_tuning_requests_total",
            "repro_request_seconds",
            "repro_jobs_total",
            "repro_job_seconds",
            "repro_http_requests_total",
        ):
            assert METRICS.get(name) is not None, name


# -- span tracing ------------------------------------------------------------------
class TestTracing:
    def test_disabled_tracing_is_the_shared_null_context(self):
        assert trace.active_trace() is None
        assert trace.span("a", kind="x") is trace.span("b", kind="y")
        assert trace.current_span() is NULL_SPAN
        trace.annotate(ignored=True)  # must not raise

    def test_span_nesting_and_exports(self, tmp_path):
        with trace.capture_trace() as collector:
            with trace.span("request", kind="request"):
                with trace.span("search", kind="search"):
                    trace.record_span("tiling", "pass", 0.25, fingerprint="abc")
                trace.annotate(kernel="matmul")
        (root,) = collector.roots
        assert root.name == "request" and root.attrs["kernel"] == "matmul"
        (search,) = root.children
        (tiling,) = search.children
        assert tiling.duration_s == pytest.approx(0.25)

        path = tmp_path / "t.json"
        save_trace(path, collector.roots, meta={"kernel": "matmul"})
        loaded = load_trace(path)
        assert summarize_spans(loaded) == summarize_spans(collector.roots)
        assert "request [request]" in render_tree(loaded)
        assert "tiling" in render_hotspots(loaded)
        chrome = to_chrome_trace(loaded)
        assert len(chrome["traceEvents"]) == 3
        assert all(e["ph"] == "X" for e in chrome["traceEvents"])

    def test_jsonl_round_trips_through_load_trace(self, tmp_path):
        with trace.capture_trace() as collector:
            with trace.span("request", kind="request"):
                trace.record_span("child", "pass", 0.1)
        path = tmp_path / "t.jsonl"
        path.write_text(to_jsonl(collector.roots))
        loaded = load_trace(path)
        assert summarize_spans(loaded) == summarize_spans(collector.roots)

    def test_autotune_traces_analysis_exactly_once(self):
        """The headline nesting: request → search → candidate → measure/pass,
        with the config-invariant analysis pass traced exactly once."""
        program = build_matmul_program(16, 16, 16)
        with trace.capture_trace() as collector:
            report = autotune(program, strategy="hillclimb", space_options=SMALL_SPACE)
        (request,) = collector.roots
        assert request.kind == "request"
        analysis = [
            s for s, _ in trace.iter_spans(collector.roots)
            if s.kind == "pass" and s.name == "analysis"
        ]
        assert len(analysis) == 1
        searches = [s for s in request.children if s.kind == "search"]
        assert len(searches) == 1
        candidates = [s for s in searches[0].children if s.kind == "candidate"]
        assert len(candidates) == len(report.results)
        for candidate in candidates:
            kinds = [child.kind for child in candidate.children]
            assert "measure" in kinds
        measures = [
            s for s, _ in trace.iter_spans(collector.roots) if s.kind == "measure"
        ]
        # model-backend measures replay the config-dependent stages
        assert any(
            child.name in ("tiling", "scratchpad", "mapping")
            for m in measures for child in m.children
        )

    def test_untraced_autotune_records_nothing(self):
        program = build_matmul_program(16, 16, 16)
        autotune(program, strategy="hillclimb", space_options=SMALL_SPACE, seed=3)
        assert trace.active_trace() is None

    def test_every_collector_has_a_distinct_trace_id(self):
        """The correlation id history records and job records carry."""
        with trace.capture_trace() as first:
            pass
        with trace.capture_trace() as second:
            pass
        for collector in (first, second):
            assert len(collector.trace_id) == 16
            int(collector.trace_id, 16)  # hex
        assert first.trace_id != second.trace_id


# -- tolerant trace loading (satellite: no tracebacks on torn files) ---------------
class TestTolerantTraceLoading:
    def _jsonl(self, tmp_path):
        with trace.capture_trace() as collector:
            with trace.span("request", kind="request"):
                trace.record_span("tiling", "pass", 0.1)
        path = tmp_path / "t.jsonl"
        path.write_text(to_jsonl(collector.roots))
        return path, collector

    def test_empty_file_is_an_empty_trace(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert load_trace(path) == []

    def test_torn_jsonl_tail_is_skipped_with_warning(self, tmp_path, capsys):
        path, collector = self._jsonl(tmp_path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"name": "torn", "kind": "pa')  # crashed writer
        loaded = load_trace(path)
        assert summarize_spans(loaded) == summarize_spans(collector.roots)
        assert "skipping trace line 3" in capsys.readouterr().err

    def test_non_span_records_are_skipped(self, tmp_path, capsys):
        path, collector = self._jsonl(tmp_path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"no_name": true}\n')
        assert summarize_spans(load_trace(path)) == summarize_spans(collector.roots)
        assert "not a span record" in capsys.readouterr().err

    def test_missing_parent_becomes_a_root(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        path.write_text(
            '{"name": "orphan", "kind": "pass", "duration_s": 0.1, '
            '"id": 5, "parent": 99}\n'
        )
        (orphan,) = load_trace(path)
        assert orphan.name == "orphan"
        assert "parent span 99 missing" in capsys.readouterr().err

    def test_trace_cli_survives_truncated_and_empty_files(self, tmp_path, capsys):
        from repro.autotune.cli import trace_main

        path, _ = self._jsonl(tmp_path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"torn')
        assert trace_main([str(path)]) == 0
        captured = capsys.readouterr()
        assert "2 spans" in captured.out  # the surviving spans still render

        empty = tmp_path / "empty.json"
        empty.write_text("")
        assert trace_main([str(empty)]) == 0
        assert "0 spans" in capsys.readouterr().out

        assert trace_main([str(tmp_path / "missing.json")]) == 2
        assert "cannot read trace" in capsys.readouterr().err


# -- the pickle contract (satellite: hook re-attachment) ---------------------------
class TestHookPickleContract:
    def test_pass_manager_drops_hooks_on_pickle(self):
        session = CompilationSession(build_matmul_program(16, 16, 16))
        session.manager.add_hook(trace.trace_pass_hook)
        session.manager.add_hook(trace.trace_pass_hook)  # idempotent
        assert session.manager._hooks == [trace.trace_pass_hook]
        clone = pickle.loads(pickle.dumps(session))
        assert clone.manager._hooks == []

    def test_evaluator_reattaches_trace_hook_after_unpickling(self):
        """Worker-side pass spans are not lost: ``__setstate__`` re-attaches
        the telemetry hook whenever the unpickling process is tracing."""
        program = build_matmul_program(16, 16, 16)
        with trace.capture_trace() as collector:
            evaluator = ConfigurationEvaluator(program)
            space = ConfigurationSpace(
                program, space_options=SMALL_SPACE, session=evaluator.session
            )
            config = space.enumerate()[0]
            clone = pickle.loads(pickle.dumps(evaluator))
            assert trace.trace_pass_hook in clone._session.manager._hooks
            before = sum(
                1 for s, _ in trace.iter_spans(collector.roots) if s.kind == "pass"
            )
            result = clone.evaluate(config)
        assert result.feasible
        after = sum(
            1 for s, _ in trace.iter_spans(collector.roots) if s.kind == "pass"
        )
        assert after > before  # the clone's replay produced pass spans

    def test_evaluator_unpickled_without_tracing_stays_unhooked(self):
        evaluator = ConfigurationEvaluator(build_matmul_program(16, 16, 16))
        evaluator.session.manager.add_hook(trace.trace_pass_hook)
        assert trace.active_trace() is None
        clone = pickle.loads(pickle.dumps(evaluator))
        assert clone._session.manager._hooks == []

    def test_worker_ships_trace_and_metrics_delta(self):
        """``execute_request`` returns picklable span dicts + a metrics delta."""
        payload = TuneRequest(
            kernel="matmul",
            sizes={"m": 16, "n": 16, "k": 16},
            strategy="hillclimb",
            space=SMALL_SPACE_DICT,
            trace=True,
        ).to_dict()
        outcome = execute_request(payload)
        assert trace.active_trace() is None  # collector uninstalled afterwards
        spans = outcome["trace"]
        assert spans and isinstance(spans[0], dict)
        summary = summarize_spans(spans)
        assert summary["request"]["spans"] == 1
        assert "candidate" in summary and "pass" in summary
        pickle.dumps(outcome)  # the whole payload must cross a process pool
        delta = outcome["metrics"]
        assert "repro_stage_runs_total" in delta
        stage_samples = delta["repro_stage_runs_total"]["samples"]
        assert any("analysis" in key for key in stage_samples)

    def test_worker_ships_its_history_record(self):
        """The worker's outcome carries one history dict for the server to
        absorb — stamped with the job id and worker provenance."""
        payload = TuneRequest(
            kernel="matmul",
            sizes={"m": 16, "n": 16, "k": 16},
            space=SMALL_SPACE_DICT,
            trace=True,
        ).to_dict()
        outcome = execute_request(payload, job_id="job-42")
        history = outcome["history"]
        assert history is not None
        assert history["kernel"] == "matmul"
        assert history["source"] == "worker"
        assert history["job_id"] == "job-42"
        assert history["evaluations"] > 0 and not history["cache_hit"]
        # the correlation contract: the record's trace id is the one
        # annotated on the shipped span tree's root
        roots = outcome["trace"]
        assert history["trace_id"] == roots[0]["attrs"]["trace_id"]
        pickle.dumps(outcome)


# -- service integration -----------------------------------------------------------
class TestServiceTelemetry:
    @pytest.fixture
    def server(self):
        server = TuningServer(port=0, executor="thread", max_workers=2).start()
        yield server
        server.stop()

    def test_metrics_endpoint_and_traced_job(self, server):
        client = TuningClient(server.url)
        request = TuneRequest(
            kernel="matmul",
            sizes={"m": 16, "n": 16, "k": 16},
            strategy="hillclimb",
            space=SMALL_SPACE_DICT,
            trace=True,
        )
        job = client.submit(request).job(timeout=300)
        assert job["status"] == "done"
        # satellite: monotonic duration captured at completion
        assert job["duration_s"] is not None and job["duration_s"] >= 0.0
        assert job["finished_at"] >= job["created_at"] - 1.0  # wall clocks only render
        assert job["trace"], "a trace-requested job must ship its span tree"
        assert job["span_summary"]["request"]["spans"] == 1
        assert "candidate" in job["span_summary"]

        # warm resubmission: served at submit time, no worker, no new trace
        warm = client.submit(request).job(timeout=60)
        assert warm["from_cache"] is True
        assert warm["duration_s"] is not None and warm["duration_s"] < 1.0

        text = client.metrics()
        parsed = parse_prometheus_text(text)  # the scrape lint
        assert any(
            dict(labels).get("stage") == "analysis"
            for labels in parsed["repro_stage_runs_total"]
        )
        assert "repro_cache_hits_total" in parsed
        assert any(
            dict(labels).get("endpoint") == "/tune"
            for labels in parsed["repro_http_requests_total"]
        )
        outcomes = {
            dict(labels)["outcome"]: value
            for labels, value in parsed["repro_jobs_total"].items()
        }
        assert outcomes.get("tuned", 0) >= 1 and outcomes.get("cached", 0) >= 1

    def test_thread_executor_does_not_absorb_its_own_delta(self, server):
        """Thread workers bump the server's registry directly; absorbing the
        delta they ship would double-count every sample.  One cold job must
        move ``repro_tuning_requests_total`` by exactly 1."""
        counter = METRICS.get("repro_tuning_requests_total")
        before = counter.value(source="tuned")
        client = TuningClient(server.url)
        request = TuneRequest(
            kernel="matmul",
            sizes={"m": 24, "n": 24, "k": 24},
            space=SMALL_SPACE_DICT,
            seed=13,
        )
        job = client.submit(request).job(timeout=300)
        assert job["status"] == "done" and not job["from_cache"]
        # the worker still *ships* a delta (the payload is executor-agnostic)
        assert counter.value(source="tuned") == before + 1

    def test_untraced_job_has_no_trace_payload(self, server):
        client = TuningClient(server.url)
        request = TuneRequest(
            kernel="matmul",
            sizes={"m": 16, "n": 16, "k": 16},
            space=SMALL_SPACE_DICT,
            seed=11,
        )
        job = client.submit(request).job(timeout=300)
        assert job["status"] == "done"
        assert job["trace"] is None
        assert job["span_summary"] is None
        assert job["duration_s"] is not None


# -- protocol additions ------------------------------------------------------------
class TestProtocolTelemetry:
    def test_trace_flag_travels_but_does_not_split_the_fingerprint(self):
        base = TuneRequest(kernel="matmul", sizes={"m": 16, "n": 16, "k": 16})
        traced = TuneRequest(
            kernel="matmul", sizes={"m": 16, "n": 16, "k": 16}, trace=True
        )
        assert TuneRequest.from_dict(traced.to_dict()).trace is True
        assert base.resolve().fingerprint == traced.resolve().fingerprint
        with pytest.raises(ValueError, match="trace must be a boolean"):
            TuneRequest(kernel="matmul", trace="yes")

    def test_mark_finished_is_monotonic_and_idempotent(self):
        record = JobRecord(id="j", fingerprint="f", request={})
        time.sleep(0.01)
        record.mark_finished()
        first = (record.duration_s, record.finished_at)
        assert record.duration_s >= 0.01
        record.mark_finished()  # second stamp must not move the timestamps
        assert (record.duration_s, record.finished_at) == first
        payload = record.to_dict()
        assert payload["duration_s"] == record.duration_s
        assert "created_mono" not in payload  # server-local, never serialized


# -- the overhead guard (satellite) ------------------------------------------------
class TestDisabledOverhead:
    def test_disabled_telemetry_overhead_is_within_budget(self):
        """Telemetry off must cost < 3% of a hillclimb matmul tune.

        Directly comparing two tune wall times is hopelessly noisy at CI
        scale, so the bound is computed the robust way: microbench the
        disabled-path primitives (null span entry, counter bump), multiply by
        a generous estimate of how many such operations the tune performed,
        and require that total to stay under 3% of the measured tune time.
        """
        assert trace.active_trace() is None
        program = build_matmul_program(16, 16, 16)
        started = time.perf_counter()
        report = autotune(
            program, strategy="hillclimb", space_options=SMALL_SPACE, seed=7
        )
        tune_seconds = time.perf_counter() - started

        rounds = 2000
        started = time.perf_counter()
        for _ in range(rounds):
            with trace.span("candidate", kind="candidate", blocks=16):
                pass
        span_cost = (time.perf_counter() - started) / rounds

        counter = METRICS.counter("repro_stage_runs_total", labels=("stage",))
        started = time.perf_counter()
        for _ in range(rounds):
            counter.inc(stage="tiling")
        counter_cost = (time.perf_counter() - started) / rounds

        # per evaluation: ~6 spans/annotations and ~8 counter/histogram ops,
        # doubled for headroom
        ops = (len(report.results) + 2) * 2 * (6 + 8)
        overhead = ops * max(span_cost, counter_cost)
        assert overhead < 0.03 * tune_seconds, (
            f"estimated disabled-telemetry overhead {1e3 * overhead:.2f} ms "
            f"exceeds 3% of the {tune_seconds:.2f}s tune"
        )
