"""Unit tests of the pluggable tuning-cache store layer.

Backend-generic behaviour (round-trip, insertion-order scan, prune, stats
identity) runs parametrized over every backend; the backend-specific
guarantees — the JSON store's tombstones, the sharded store's O(1) puts, the
append log's compaction and crash recovery — and the cross-backend migration
tool each get their own sections.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.autotune import TuningCache, autotune, migrate_store, open_store
from repro.autotune.space import SpaceOptions
from repro.autotune.store import (
    AppendLogStore,
    JsonFileStore,
    MemoryStore,
    ShardedStore,
    parse_store_uri,
)
from repro.kernels import build_matmul_program

BACKENDS = ("json", "sharded", "log")

SMALL_SPACE = SpaceOptions(
    thread_counts=(64,), block_counts=(16,), tile_candidates_per_geometry=2
)


def store_spec(backend: str, tmp_path) -> str:
    """A store URI of the requested backend rooted under ``tmp_path``."""
    return {
        "json": str(tmp_path / "cache.json"),
        "sharded": f"dir:{tmp_path / 'cache-dir'}",
        "log": f"log:{tmp_path / 'cache.log'}",
    }[backend]


# -- URI parsing -------------------------------------------------------------------
class TestStoreUris:
    def test_explicit_schemes(self, tmp_path):
        assert parse_store_uri("json:x.bin") == ("json", "x.bin")
        assert parse_store_uri("dir:/var/cache") == ("sharded", "/var/cache")
        assert parse_store_uri("log:/var/cache.jsonl") == ("log", "/var/cache.jsonl")
        assert parse_store_uri("mem:") == ("memory", None)
        assert parse_store_uri(None) == ("memory", None)

    def test_auto_detection(self, tmp_path):
        assert parse_store_uri("cache.json") == ("json", "cache.json")
        assert parse_store_uri("cache.jsonl") == ("log", "cache.jsonl")
        assert parse_store_uri("cache.log") == ("log", "cache.log")
        assert parse_store_uri("cache-dir/") == ("sharded", "cache-dir")
        existing = tmp_path / "already-there"
        existing.mkdir()
        assert parse_store_uri(str(existing)) == ("sharded", str(existing))

    def test_unknown_scheme_is_an_error_not_a_filename(self):
        with pytest.raises(ValueError, match="unknown cache store scheme"):
            parse_store_uri("bogus:whatever")
        with pytest.raises(ValueError, match="unknown cache store scheme"):
            parse_store_uri("s3:bucket/cache")  # digits don't dodge the guard
        with pytest.raises(ValueError, match="missing a path"):
            parse_store_uri("dir:")
        # single-letter prefixes stay paths (Windows drive letters)
        assert parse_store_uri("C:\\cache.json")[0] == "json"

    def test_open_store_dispatches(self, tmp_path):
        assert isinstance(open_store(None), MemoryStore)
        assert isinstance(open_store(str(tmp_path / "c.json")), JsonFileStore)
        assert isinstance(open_store(f"dir:{tmp_path / 'd'}"), ShardedStore)
        assert isinstance(open_store(f"log:{tmp_path / 'c.log'}"), AppendLogStore)

    def test_uri_round_trips_every_backend(self, tmp_path):
        for backend in BACKENDS:
            spec = store_spec(backend, tmp_path)
            cache = TuningCache(spec)
            cache.put("k", {"v": 1})
            reopened = TuningCache(cache.uri)
            assert reopened.backend == cache.backend == (
                "sharded" if backend == "sharded" else backend
            )
            assert reopened.peek("k") == {"v": 1}


# -- backend-generic behaviour -----------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
class TestEveryBackend:
    def test_round_trip_and_persistence(self, backend, tmp_path):
        spec = store_spec(backend, tmp_path)
        cache = TuningCache(spec)
        for i in range(4):
            cache.put(f"key-{i}", {"v": i})
        assert len(cache) == 4
        assert "key-2" in cache and "missing" not in cache
        assert cache.get("key-2") == {"v": 2}
        assert cache.get("missing") is None
        assert cache.hits == 1 and cache.misses == 1
        warm = TuningCache(spec)
        assert warm.peek("key-3") == {"v": 3}
        assert len(warm) == 4

    def test_scan_preserves_insertion_order(self, backend, tmp_path):
        cache = TuningCache(store_spec(backend, tmp_path))
        cache.put("zz-oldest", {"v": 0})
        cache.put("aa-middle", {"v": 1})
        cache.put("mm-newest", {"v": 2})
        # re-putting an existing key must not refresh its position
        cache.put("zz-oldest", {"v": 3})
        assert [k for k, _ in cache.scan()] == ["zz-oldest", "aa-middle", "mm-newest"]
        reopened = TuningCache(store_spec(backend, tmp_path))
        assert [k for k, _ in reopened.scan()] == ["zz-oldest", "aa-middle", "mm-newest"]

    def test_prune_drops_oldest_and_sticks(self, backend, tmp_path):
        spec = store_spec(backend, tmp_path)
        cache = TuningCache(spec)
        for i in range(5):
            cache.put(f"k{i}", {"v": i})
        assert cache.prune(2) == 3
        assert cache.prune(2) == 0
        reloaded = TuningCache(spec)
        assert [k for k, _ in reloaded.scan()] == ["k3", "k4"]
        with pytest.raises(ValueError):
            cache.prune(-1)

    def test_clear_empties_the_store(self, backend, tmp_path):
        spec = store_spec(backend, tmp_path)
        cache = TuningCache(spec)
        cache.put("k", {"v": 1})
        cache.clear()
        assert len(cache) == 0
        assert len(TuningCache(spec)) == 0

    def test_stats_identify_the_backend(self, backend, tmp_path):
        cache = TuningCache(store_spec(backend, tmp_path))
        cache.put("k", {"v": 1})
        stats = cache.stats()
        expected = "sharded" if backend == "sharded" else backend
        assert stats["backend"] == expected
        assert stats["entries"] == 1
        assert stats["bytes"] > 0
        assert stats["hits"] == 0 and stats["misses"] == 0
        if backend == "sharded":
            assert stats["shards"] == 1
        if backend == "log":
            assert stats["segments"] == 1
            assert stats["compactions"] == 0

    def test_autotune_warm_hit_through_backend(self, backend, tmp_path):
        """Every backend serves the second identical request with zero compiles."""
        from repro.core.pipeline import counting_compiles

        spec = store_spec(backend, tmp_path)
        program = build_matmul_program(24, 24, 24)
        cold = autotune(program, space_options=SMALL_SPACE, cache=spec)
        assert not cold.from_cache
        with counting_compiles() as compiles:
            warm = autotune(program, space_options=SMALL_SPACE, cache=spec)
        assert warm.from_cache
        assert compiles.count == 0
        assert warm.best.to_dict() == cold.best.to_dict()


# -- JSON store: tombstones --------------------------------------------------------
class TestJsonTombstones:
    def test_concurrent_saver_cannot_resurrect_pruned_entries(self, tmp_path):
        """The ISSUE's race, in-process: load → prune elsewhere → save."""
        path = str(tmp_path / "cache.json")
        seed = TuningCache(path)
        for i in range(5):
            seed.put(f"k{i}", {"v": i})
        late_writer = TuningCache(path)  # mirror holds k0..k4
        assert TuningCache(path).prune(2) == 3
        late_writer.put("k5", {"v": 5})  # old code resurrected k0-k2 here
        final = TuningCache(path)
        assert [k for k, _ in final.scan()] == ["k3", "k4", "k5"]
        # the writer's own mirror converged with the prune
        assert late_writer.peek("k0") is None

    def test_re_put_after_prune_clears_the_tombstone(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = TuningCache(path)
        for i in range(3):
            cache.put(f"k{i}", {"v": i})
        cache.prune(1)
        assert cache.stats()["tombstones"] == 2
        cache.put("k0", {"v": "again"})  # deliberate re-insert wins
        assert cache.stats()["tombstones"] == 1
        assert TuningCache(path).peek("k0") == {"v": "again"}

    def test_compact_drops_tombstones(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = TuningCache(path)
        for i in range(4):
            cache.put(f"k{i}", {"v": i})
        cache.prune(2)
        before = cache.stats()
        assert before["tombstones"] == 2
        outcome = cache.compact()
        assert outcome["tombstones_removed"] == 2
        assert cache.stats()["tombstones"] == 0
        assert len(TuningCache(path)) == 2

    def test_tombstones_invisible_to_version2_readers(self, tmp_path):
        """The extra field keeps the file a valid version-2 document."""
        path = tmp_path / "cache.json"
        cache = TuningCache(str(path))
        for i in range(3):
            cache.put(f"k{i}", {"v": i})
        cache.prune(2)
        payload = json.loads(path.read_text())
        assert payload["version"] == 2
        assert list(payload["entries"]) == ["k1", "k2"]
        assert list(payload["tombstones"]) == ["k0"]


# -- sharded store: O(1) puts ------------------------------------------------------
class TestShardedStore:
    def test_put_touches_no_other_entry_file(self, tmp_path):
        """Acceptance: a put never reads or rewrites other entries."""
        store = ShardedStore(tmp_path / "store")
        for i in range(16):
            store.put(f"key-{i}", {"v": i})
        snapshot = {
            path: (path.stat().st_mtime_ns, path.stat().st_size)
            for path in store._entry_files()
        }
        assert len(snapshot) == 16
        store.put("fresh-key", {"v": "new"})
        for path, (mtime, size) in snapshot.items():
            stat = path.stat()
            assert (stat.st_mtime_ns, stat.st_size) == (mtime, size), (
                f"put rewrote unrelated entry {path.name}"
            )

    def test_fanout_layout_and_meta(self, tmp_path):
        root = tmp_path / "store"
        store = ShardedStore(root)
        store.put("some-key", {"v": 1})
        assert (root / "store.json").exists()
        shards = [d for d in root.iterdir() if d.is_dir() and len(d.name) == 2]
        assert len(shards) == 1
        assert len(list(shards[0].glob("*.json"))) == 1

    def test_meta_version_mismatch_is_an_error(self, tmp_path):
        root = tmp_path / "store"
        root.mkdir()
        (root / "store.json").write_text(json.dumps({"version": 999}))
        with pytest.raises(ValueError, match="unsupported sharded-store layout"):
            ShardedStore(root)

    def test_compact_sweeps_empty_shards(self, tmp_path):
        store = ShardedStore(tmp_path / "store")
        for i in range(8):
            store.put(f"key-{i}", {"v": i})
        shards_before = sum(1 for _ in store._shard_dirs())
        store.prune(0)
        outcome = store.compact()
        assert outcome["empty_shards_removed"] == shards_before
        assert len(store) == 0

    def test_corrupt_entry_file_reads_as_miss(self, tmp_path):
        store = ShardedStore(tmp_path / "store")
        store.put("key", {"v": 1})
        entry_path = store._entry_path("key")
        entry_path.write_text("{ not json")
        assert store.get("key") is None
        assert list(store.scan()) == []


# -- append log: compaction + recovery ---------------------------------------------
class TestAppendLogStore:
    def test_high_churn_triggers_auto_compaction(self, tmp_path):
        store = AppendLogStore(
            tmp_path / "churn.log", auto_compact_bytes=512, auto_compact_ratio=2
        )
        for i in range(300):
            store.put(f"k{i % 4}", {"v": i})
        stats = store.stats()
        assert stats["compactions"] >= 1
        assert stats["entries"] == 4
        # the log stays bounded instead of growing by one line per put
        assert stats["bytes"] < 2048
        assert dict(store.scan())["k3"] == {"v": 299}

    def test_crash_truncated_tail_recovers(self, tmp_path):
        path = tmp_path / "crash.log"
        store = AppendLogStore(path)
        store.put("a", {"v": 1})
        store.put("b", {"v": 2})
        with open(path, "ab") as handle:
            handle.write(b'{"op":"put","key":"torn","value":{"v"')  # no newline
        recovered = AppendLogStore(path)
        assert dict(recovered.scan()) == {"a": {"v": 1}, "b": {"v": 2}}
        # appending after the crash terminates the torn line instead of fusing
        recovered.put("c", {"v": 3})
        reopened = AppendLogStore(path)
        assert dict(reopened.scan()) == {"a": {"v": 1}, "b": {"v": 2}, "c": {"v": 3}}
        assert reopened.stats()["corrupt_lines"] == 1

    def test_corrupt_middle_line_is_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "mid.log"
        lines = [
            json.dumps({"op": "put", "key": "a", "value": {"v": 1}}),
            "?? not json ??",
            json.dumps({"op": "put", "key": "b", "value": {"v": 2}}),
        ]
        path.write_text("".join(line + "\n" for line in lines))
        store = AppendLogStore(path)
        assert dict(store.scan()) == {"a": {"v": 1}, "b": {"v": 2}}
        assert store.stats()["corrupt_lines"] == 1

    def test_compaction_detected_by_other_instance(self, tmp_path):
        """A reader re-replays from scratch when the log inode changes."""
        path = tmp_path / "shared.log"
        writer = AppendLogStore(path)
        reader = AppendLogStore(path)
        for i in range(10):
            writer.put(f"k{i}", {"v": i})
        assert reader.get("k9") == {"v": 9}
        writer.prune(2)  # rewrites the log (new inode)
        assert reader.get("k9") == {"v": 9}  # still live
        # a key the prune dropped must go away once the reader resyncs
        writer.put("fresh", {"v": 42})
        assert reader.get("fresh") == {"v": 42}
        assert len(AppendLogStore(path)) == 3

    def test_explicit_compact_reports_reclaim(self, tmp_path):
        store = AppendLogStore(tmp_path / "c.log")
        for i in range(20):
            store.put("same-key", {"v": i})
        outcome = store.compact()
        assert outcome["bytes_after"] < outcome["bytes_before"]
        assert dict(store.scan()) == {"same-key": {"v": 19}}


# -- append log: sealed segments ---------------------------------------------------
class TestAppendLogSegments:
    def test_rotate_seals_the_active_file(self, tmp_path):
        path = tmp_path / "seg.log"
        store = AppendLogStore(path)
        for i in range(5):
            store.put(f"k{i}", {"v": i})
        segment = store.rotate()
        assert segment is not None and segment.exists()
        assert segment.name.endswith(".seg")
        # sealing moved bytes, not state: the store still serves everything
        assert store.get("k3") == {"v": 3}
        store.put("k5", {"v": 5})  # a fresh active file starts transparently
        stats = store.stats()
        assert stats["segments"] == 2
        assert stats["rotations"] == 1
        assert stats["entries"] == 6
        # a cold reader replays sealed segments then the active tail
        assert dict(AppendLogStore(path).scan()) == {
            f"k{i}": {"v": i} for i in range(6)
        }

    def test_rotate_with_nothing_to_seal_is_a_noop(self, tmp_path):
        store = AppendLogStore(tmp_path / "empty.log")
        assert store.rotate() is None
        assert store.stats()["rotations"] == 0

    def test_compact_sealed_folds_segments_without_touching_active(self, tmp_path):
        path = tmp_path / "fold.log"
        store = AppendLogStore(path)
        for round_no in range(3):
            for i in range(4):
                store.put(f"k{i}", {"v": round_no})
            store.rotate()
        store.put("active-only", {"v": 99})
        active_bytes_before = path.stat().st_size
        outcome = store.compact_sealed()
        assert outcome["segments_merged"] == 3
        assert outcome["bytes_after"] < outcome["bytes_before"]
        assert path.stat().st_size == active_bytes_before  # active untouched
        assert len(store._sealed_paths()) == 1
        # the fold is exact: replaying merged + active gives the same state
        assert dict(AppendLogStore(path).scan()) == {
            "k0": {"v": 2},
            "k1": {"v": 2},
            "k2": {"v": 2},
            "k3": {"v": 2},
            "active-only": {"v": 99},
        }

    def test_appends_proceed_while_sealed_compaction_holds_its_lock(self, tmp_path):
        """The ISSUE's liveness claim: compaction never blocks appends.

        A sealed-segment merge holds only the segment lock; here a simulated
        in-progress merge holds that lock for the whole test while a put on
        another thread must still complete.
        """
        import threading

        fcntl = pytest.importorskip("fcntl")
        path = tmp_path / "live.log"
        store = AppendLogStore(path)
        store.put("seed", {"v": 0})
        seg_lock = open(store._seg_lock_path(), "w")
        fcntl.flock(seg_lock, fcntl.LOCK_EX)  # a merge is "in progress"
        try:
            done = threading.Event()

            def writer():
                store.put("during-merge", {"v": 1})
                done.set()

            thread = threading.Thread(target=writer, daemon=True)
            thread.start()
            assert done.wait(timeout=10), "append blocked behind segment lock"
            thread.join(timeout=10)
        finally:
            fcntl.flock(seg_lock, fcntl.LOCK_UN)
            seg_lock.close()
        assert store.get("during-merge") == {"v": 1}

    def test_ingest_segment_fills_gaps_and_local_entries_win(self, tmp_path):
        source = AppendLogStore(tmp_path / "source.log")
        source.put("shared", {"v": "theirs"})
        source.put("only-remote", {"v": "shipped"})
        segment = source.rotate()
        target = AppendLogStore(tmp_path / "target.log")
        target.put("shared", {"v": "ours"})
        adopted = target.ingest_segment(segment)
        assert adopted == 1
        assert target.get("only-remote") == {"v": "shipped"}
        assert target.get("shared") == {"v": "ours"}  # local wins
        # durable: a cold reader of the target sees the ingested entry
        assert dict(AppendLogStore(tmp_path / "target.log").scan()) == {
            "shared": {"v": "ours"},
            "only-remote": {"v": "shipped"},
        }

    def test_full_compact_folds_sealed_segments_away(self, tmp_path):
        path = tmp_path / "full.log"
        store = AppendLogStore(path)
        for i in range(4):
            store.put(f"k{i}", {"v": i})
        store.rotate()
        store.put("k4", {"v": 4})
        store.compact()
        assert store._sealed_paths() == []
        assert store.stats()["segments"] == 1
        assert dict(AppendLogStore(path).scan()) == {
            f"k{i}": {"v": i} for i in range(5)
        }


# -- sharded store: stale sidecar-lock takeover ------------------------------------
class TestShardedStaleLockTakeover:
    def test_put_takes_over_a_stale_peer_lock(self, tmp_path):
        """A dead NFS peer's wedged sidecar lock is aged out, not waited on."""
        import os
        import threading

        fcntl = pytest.importorskip("fcntl")
        root = tmp_path / "store"
        seed = ShardedStore(root)
        seed.put("victim", {"v": 0})
        lock_path = seed._entry_path("victim").parent / ".lock"
        # a "dead peer": holds the flock forever, sidecar mtime long stale
        peer = open(lock_path, "a")
        fcntl.flock(peer, fcntl.LOCK_EX)
        old = 1.0  # 1970: anything older than any takeover threshold
        os.utime(lock_path, (old, old))
        try:
            store = ShardedStore(root, stale_after=0.2)
            done = threading.Event()

            def writer():
                store.put("victim", {"v": 1})
                done.set()

            thread = threading.Thread(target=writer, daemon=True)
            thread.start()
            assert done.wait(timeout=10), "put wedged behind a dead peer's lock"
            thread.join(timeout=10)
            assert store.get("victim") == {"v": 1}
            assert store.stats()["lock_takeovers"] >= 1
        finally:
            fcntl.flock(peer, fcntl.LOCK_UN)
            peer.close()

    def test_fresh_contention_is_waited_out_not_stolen(self, tmp_path):
        """A *live* holder (fresh mtime) is never taken over; the contender
        waits and proceeds only after the holder releases."""
        import threading
        import time

        fcntl = pytest.importorskip("fcntl")
        root = tmp_path / "store"
        seed = ShardedStore(root)
        seed.put("victim", {"v": 0})
        lock_path = seed._entry_path("victim").parent / ".lock"
        holder = open(lock_path, "a")
        fcntl.flock(holder, fcntl.LOCK_EX)  # mtime stays fresh: a live holder
        store = ShardedStore(root, stale_after=30.0)
        done = threading.Event()

        def writer():
            store.put("victim", {"v": 1})
            done.set()

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        time.sleep(0.3)
        assert not done.is_set(), "live holder's lock was stolen"
        fcntl.flock(holder, fcntl.LOCK_UN)
        holder.close()
        assert done.wait(timeout=10)
        thread.join(timeout=10)
        assert store.stats()["lock_takeovers"] == 0


# -- migration ---------------------------------------------------------------------
class TestMigration:
    @pytest.fixture()
    def v2_fixture(self, tmp_path):
        """A legacy version-2 JSON cache with order-sensitive entries."""
        path = tmp_path / "legacy.json"
        cache = TuningCache(str(path))
        entries = [
            ("zz-first", {"report": {"best": 1.5}, "seed": 0}),
            ("aa-second", {"report": {"best": 0.5}, "seed": 7}),
            ("mm-third", {"nested": {"deep": [1, 2, 3]}}),
        ]
        for key, value in entries:
            cache.put(key, value)
        return str(path), entries

    @pytest.mark.parametrize("backend", ("sharded", "log"))
    def test_round_trip_preserves_content_and_order(self, backend, tmp_path, v2_fixture):
        src, entries = v2_fixture
        middle = store_spec(backend, tmp_path / "mid")
        back = str(tmp_path / "back.json")
        out = migrate_store(src, middle)
        assert out["entries"] == len(entries)
        assert migrate_store(middle, back)["entries"] == len(entries)
        # entry content round-trips exactly, insertion order included
        assert list(TuningCache(back).scan()) == entries
        assert list(TuningCache(src).scan()) == entries  # source untouched

    def test_sharded_to_log_direct(self, tmp_path):
        src = store_spec("sharded", tmp_path)
        dst = store_spec("log", tmp_path)
        cache = TuningCache(src)
        for i in range(5):
            cache.put(f"k{i}", {"v": i})
        assert migrate_store(src, dst)["entries"] == 5
        assert [k for k, _ in TuningCache(dst).scan()] == [f"k{i}" for i in range(5)]

    def test_refuses_nonempty_destination_without_force(self, tmp_path, v2_fixture):
        src, entries = v2_fixture
        dst = store_spec("sharded", tmp_path)
        TuningCache(dst).put("pre-existing", {"v": 0})
        with pytest.raises(ValueError, match="already holds"):
            migrate_store(src, dst)
        out = migrate_store(src, dst, force=True)
        assert out["entries"] == len(entries)
        assert "pre-existing" not in TuningCache(dst)

    def test_refuses_same_store(self, tmp_path, v2_fixture):
        src, _entries = v2_fixture
        with pytest.raises(ValueError, match="same store"):
            migrate_store(src, src)

    def test_refuses_same_store_behind_a_path_alias(self, tmp_path, v2_fixture, monkeypatch):
        """An aliased spelling of the source must not slip past the guard —
        with --force it would clear the source before 'migrating' nothing."""
        src, entries = v2_fixture
        monkeypatch.chdir(Path(src).parent)
        relative = Path(src).name
        aliased = f"json:./{relative}"
        with pytest.raises(ValueError, match="same store"):
            migrate_store(relative, aliased, force=True)
        assert len(TuningCache(src)) == len(entries)  # source untouched

    def test_cli_cache_migrate(self, tmp_path, v2_fixture, capsys):
        from repro.autotune.cli import main as cli_main

        src, entries = v2_fixture
        dst = f"dir:{tmp_path / 'migrated'}"
        assert cli_main(["cache-migrate", src, dst]) == 0
        out = capsys.readouterr().out
        assert f"migrated {len(entries)} entries" in out
        assert list(TuningCache(dst).scan()) == entries
        # a second run without --force refuses
        assert cli_main(["cache-migrate", src, dst]) == 2
        assert "already holds" in capsys.readouterr().err

    def test_cli_cache_tools_accept_uris(self, tmp_path, capsys):
        from repro.autotune.cli import main as cli_main

        spec = f"dir:{tmp_path / 'store'}"
        cache = TuningCache(spec)
        for i in range(3):
            cache.put(f"k{i}", {"v": i})
        assert cli_main(["cache-stats", "--cache", spec]) == 0
        out = capsys.readouterr().out
        assert "backend: sharded" in out
        assert "entries: 3" in out
        assert "shards:" in out
        assert cli_main(["cache-prune", "--cache", spec, "--max-entries", "1"]) == 0
        assert "pruned 2 entries" in capsys.readouterr().out
        assert cli_main(["cache-stats", "--cache", "bogus:x"]) == 2
        assert "unknown cache store scheme" in capsys.readouterr().err


# -- facade ------------------------------------------------------------------------
class TestFacadeOverBackends:
    def test_absorb_never_persists_on_any_backend(self, tmp_path):
        for backend in BACKENDS:
            spec = store_spec(backend, tmp_path / backend)
            cache = TuningCache(spec)
            cache.absorb("ghost", {"v": 1})
            assert cache.get("ghost") == {"v": 1}
            assert "ghost" not in TuningCache(spec)

    def test_memory_cache_has_memory_backend(self):
        cache = TuningCache()
        assert cache.backend == "memory"
        assert cache.uri is None and cache.path is None
        cache.put("k", {"v": 1})
        assert cache.stats()["backend"] == "memory"
        assert cache.stats()["entries"] == 1
