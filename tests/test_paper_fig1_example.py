"""Integration test reproducing the paper's Fig. 1 worked example end-to-end.

The paper's figure allocates a single buffer per array (``LA[19][10]``,
``LB[19][24]``, both with offsets (10, 11)), generates move-in code consisting
of two disjoint loop nests for ``A`` (the accessed regions of ``A`` are not
contiguous) and rewrites the statement body to ``LA[i-10][j+1-11]`` form.
"""

import numpy as np
import pytest

from repro.ir import ProgramBuilder, program_to_c
from repro.ir.ast import StatementNode
from repro.runtime import run_program
from repro.scratchpad import ScratchpadManager, ScratchpadOptions


@pytest.fixture(scope="module")
def fig1():
    builder = ProgramBuilder("fig1")
    A = builder.array("A", (200, 200))
    B = builder.array("B", (200, 200))
    i, j, k = builder.var("i"), builder.var("j"), builder.var("k")
    with builder.loop("i", 10, 14):
        with builder.loop("j", 10, 14):
            builder.assign(A[i, j + 1], A[i + j, j + 1] * 3, name="S1")
            with builder.loop("k", 11, 20):
                builder.assign(B[i, j + k], A[i, k] + B[i + j, k], name="S2")
    program = builder.build()
    manager = ScratchpadManager(
        ScratchpadOptions(target="cell", single_buffer_per_array=True)
    )
    transformed, plan = manager.apply(program)
    return program, transformed, plan


class TestFig1:
    def test_buffer_shapes_match_paper(self, fig1):
        _, _, plan = fig1
        shapes = {entry.spec.local.name: entry.spec.local.shape for entry in plan.buffers}
        assert shapes == {"l_A": (19, 10), "l_B": (19, 24)}

    def test_offsets_match_paper(self, fig1):
        _, _, plan = fig1
        offsets = {
            entry.spec.local.name: tuple(str(o) for o in entry.spec.offsets)
            for entry in plan.buffers
        }
        assert offsets["l_A"] == ("10", "11")
        assert offsets["l_B"] == ("10", "11")

    def test_move_in_code_for_A_has_two_disjoint_nests(self, fig1):
        _, _, plan = fig1
        buffer_a = next(entry for entry in plan.buffers if entry.spec.local.name == "l_A")
        copy_statements = [
            node
            for node in buffer_a.movement.copy_in.walk()
            if isinstance(node, StatementNode)
        ]
        assert len(copy_statements) >= 2  # the paper's two move-in loop nests

    def test_each_element_copied_exactly_once(self, fig1):
        _, transformed, _ = fig1
        rng = np.random.default_rng(7)
        ctx = run_program(
            transformed,
            inputs={"A": rng.random((200, 200)), "B": rng.random((200, 200))},
        )
        counters = ctx.counters
        # copy-in touches the union of read regions of A (165 elements: 140 for
        # rows 10-14 cols 11-20 plus 25 for the A[i+j][j+1] region) and of B.
        assert counters.copy_in_elements == counters.global_reads
        assert counters.copy_out_elements == counters.global_writes

    def test_semantics_preserved(self, fig1):
        program, transformed, _ = fig1
        rng = np.random.default_rng(11)
        a0, b0 = rng.random((200, 200)), rng.random((200, 200))
        reference = run_program(program, inputs={"A": a0.copy(), "B": b0.copy()})
        staged = run_program(transformed, inputs={"A": a0.copy(), "B": b0.copy()})
        assert np.allclose(reference.data("A"), staged.data("A"))
        assert np.allclose(reference.data("B"), staged.data("B"))

    def test_remapped_body_uses_local_arrays(self, fig1):
        _, transformed, _ = fig1
        text = program_to_c(transformed)
        assert "l_A[" in text and "l_B[" in text
        assert "__shared__" in text
