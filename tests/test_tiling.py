"""Tests for bands, skewing, multi-level tiling, placement, cost model and the
tile-size search (paper Section 4)."""

import numpy as np
import pytest

from repro.ir import ProgramBuilder, absolute
from repro.kernels import build_jacobi_time_program, build_me_program
from repro.runtime import run_program
from repro.tiling import (
    TilingLevelSpec,
    analyze_bands,
    apply_skewing,
    find_legal_skewing,
    hoist_level_for_buffer,
    occupancy_limited_blocks,
    redundant_loops_for_buffer,
    search_tile_sizes,
    tile_program,
)
from repro.tiling.cost_model import DataMovementCostModel
from repro.tiling.mapping import LaunchGeometry, blocks_for_extent
from repro.tiling.tile_search import TileSearchProblem
from repro.scratchpad import compute_reference_data_spaces, partition_overlapping, allocate_local_buffer


def small_me():
    return build_me_program(8, 8, window=4)


class TestBands:
    def test_me_space_and_time_loops(self):
        analysis = analyze_bands(small_me())
        assert analysis.space_loops == ("i", "j")
        assert set(analysis.time_loops) == {"k", "l"}
        assert not analysis.needs_global_synchronization

    def test_jacobi_needs_global_sync(self):
        analysis = analyze_bands(build_jacobi_time_program(12, 4))
        assert "t" in analysis.time_loops
        assert analysis.carried["t"] > 0

    def test_parallel_loops_carry_nothing(self):
        analysis = analyze_bands(small_me())
        for loop in analysis.parallel_loops:
            assert analysis.carried[loop] == 0

    def test_empty_program_rejected(self):
        from repro.ir.program import Program

        with pytest.raises(ValueError):
            analyze_bands(Program("empty"))


class TestSkewing:
    def test_jacobi_skew_factor_one(self):
        program = build_jacobi_time_program(10, 4)
        assert find_legal_skewing(program, "t", "i") == 1

    def test_already_legal_needs_no_skew(self):
        analysis_program = small_me()
        assert find_legal_skewing(analysis_program, "i", "j") == 0

    def test_apply_skewing_preserves_semantics(self):
        program = build_jacobi_time_program(10, 4)
        skewed = apply_skewing(program, "t", "i", 1)
        reference = run_program(program, inputs={"A": _jacobi_init(10, 4)})
        transformed = run_program(skewed, inputs={"A": _jacobi_init(10, 4)})
        assert np.allclose(reference.data("A"), transformed.data("A"))

    def test_apply_skewing_factor_zero_is_identity(self):
        program = build_jacobi_time_program(8, 2)
        assert apply_skewing(program, "t", "i", 0) is program

    def test_skewed_band_is_permutable(self):
        program = build_jacobi_time_program(10, 4)
        skewed = apply_skewing(program, "t", "i", 1)
        analysis = analyze_bands(skewed)
        assert set(analysis.permutable_band) >= {"t", "is"}


def _jacobi_init(n, t):
    data = np.zeros((t + 1, n + 2))
    data[0] = np.arange(n + 2)
    return data


class TestMultiLevelTiling:
    def test_fig3_structure_and_semantics(self):
        program = small_me()
        levels = [
            TilingLevelSpec(sizes={"i": 4, "j": 4}, parallel="blocks", suffix="T"),
            TilingLevelSpec(sizes={"i": 2, "j": 2, "k": 4, "l": 4}, suffix="p"),
            TilingLevelSpec(sizes={"i": 1, "j": 2}, parallel="threads", suffix="t"),
        ]
        tiled = tile_program(program, levels)
        assert [loop.iterator for loop in tiled.block_loops()] == ["iT", "jT", "ip", "jp", "kp", "lp"]
        reference = run_program(program)
        transformed = run_program(tiled.program)
        assert np.allclose(reference.data("SAD"), transformed.data("SAD"))

    def test_non_divisible_tile_sizes_still_correct(self):
        program = small_me()
        levels = [TilingLevelSpec(sizes={"i": 3, "j": 5}, parallel="blocks")]
        tiled = tile_program(program, levels)
        reference = run_program(program)
        transformed = run_program(tiled.program)
        assert np.allclose(reference.data("SAD"), transformed.data("SAD"))

    def test_statement_domains_gain_tile_parameters(self):
        tiled = tile_program(small_me(), [TilingLevelSpec(sizes={"i": 4}, parallel="blocks")])
        stmt = tiled.program.statement("sad_update")
        assert "iT" in stmt.domain.params

    def test_unknown_loop_rejected(self):
        with pytest.raises(ValueError):
            tile_program(small_me(), [TilingLevelSpec(sizes={"z": 4})])

    def test_requires_perfect_nest(self):
        b = ProgramBuilder("imperfect")
        A = b.array("A", (8,))
        i = b.var("i")
        with b.loop("i", 0, 3):
            b.assign(A[i], 1)
        with b.loop("i2", 0, 3):
            b.assign(A[b.var("i2") + 4], 2)
        with pytest.raises(ValueError):
            tile_program(b.build(), [TilingLevelSpec(sizes={"i": 2})])

    def test_invalid_tile_size_rejected(self):
        with pytest.raises(ValueError):
            TilingLevelSpec(sizes={"i": 0})


class TestPlacement:
    def _sad_buffer(self):
        program = small_me()
        spaces = compute_reference_data_spaces(program.statement_list)
        partition = partition_overlapping(spaces["SAD"])[0]
        return allocate_local_buffer(program.array("SAD"), partition)

    def test_sad_copy_hoists_out_of_window_loops(self):
        spec = self._sad_buffer()
        redundant = redundant_loops_for_buffer(spec, ["i", "j", "k", "l"])
        assert redundant == {"k", "l"}
        block_loops = [("ip", "i"), ("jp", "j"), ("kp", "k"), ("lp", "l")]
        assert hoist_level_for_buffer(spec, block_loops) == 2

    def test_frame_buffer_not_hoistable(self):
        program = small_me()
        spaces = compute_reference_data_spaces(program.statement_list)
        partition = partition_overlapping(spaces["Cur"])[0]
        spec = allocate_local_buffer(program.array("Cur"), partition)
        assert hoist_level_for_buffer(spec, [("ip", "i"), ("jp", "j"), ("kp", "k"), ("lp", "l")]) == 0


class TestCostModelAndSearch:
    @pytest.fixture(scope="class")
    def me_model(self):
        program = build_me_program(64, 64, window=16)
        return DataMovementCostModel(
            program=program,
            tile_loops=["i", "j", "k", "l"],
            loop_extents={"i": 64, "j": 64, "k": 16, "l": 16},
            threads=64,
            sync_cost=8.0,
            transfer_cost=4.0,
        )

    def test_footprint_grows_with_tiles(self, me_model):
        small = me_model.footprint_bytes({"i": 8, "j": 8, "k": 16, "l": 16})
        large = me_model.footprint_bytes({"i": 32, "j": 32, "k": 16, "l": 16})
        assert large > small > 0

    def test_cost_decreases_with_larger_tiles(self, me_model):
        cost_small = me_model.movement_cost({"i": 8, "j": 8, "k": 16, "l": 16})
        cost_large = me_model.movement_cost({"i": 32, "j": 16, "k": 16, "l": 16})
        assert cost_large < cost_small

    def test_buffer_details_structure(self, me_model):
        details = me_model.buffer_details({"i": 16, "j": 16, "k": 16, "l": 16})
        arrays = {d["array"] for d in details}
        assert {"Cur", "Ref", "SAD"} <= arrays
        for entry in details:
            assert entry["footprint_bytes"] > 0 and entry["occurrences"] >= 1

    def test_search_respects_memory_limit(self, me_model):
        problem = TileSearchProblem(
            cost_model=me_model, memory_limit_bytes=16 * 1024, min_parallelism=64
        )
        result = search_tile_sizes(problem)
        assert result.feasible
        assert result.footprint_bytes <= 16 * 1024
        assert me_model.work_per_tile(result.tile_sizes) >= 64

    def test_search_prefers_larger_tiles_with_more_memory(self, me_model):
        tight = search_tile_sizes(
            TileSearchProblem(cost_model=me_model, memory_limit_bytes=4 * 1024, min_parallelism=32)
        )
        roomy = search_tile_sizes(
            TileSearchProblem(cost_model=me_model, memory_limit_bytes=16 * 1024, min_parallelism=32)
        )
        assert roomy.cost <= tight.cost

    def test_invalid_problem_rejected(self, me_model):
        with pytest.raises(ValueError):
            TileSearchProblem(cost_model=me_model, memory_limit_bytes=0, min_parallelism=32)


class TestMapping:
    def test_occupancy_limit(self):
        assert occupancy_limited_blocks(2048, 16 * 1024) == 8
        assert occupancy_limited_blocks(6 * 1024, 16 * 1024) == 2
        assert occupancy_limited_blocks(20 * 1024, 16 * 1024) == 0

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            LaunchGeometry(num_blocks=0, threads_per_block=32)

    def test_concurrent_blocks(self):
        geometry = LaunchGeometry(num_blocks=128, threads_per_block=64, shared_memory_per_block_bytes=2048)
        assert geometry.concurrent_blocks(16 * 1024, 16) == 128
        geometry_big = LaunchGeometry(num_blocks=128, threads_per_block=64, shared_memory_per_block_bytes=8192)
        assert geometry_big.concurrent_blocks(16 * 1024, 16) == 32

    def test_blocks_for_extent(self):
        assert blocks_for_extent(100, 32) == 4
        with pytest.raises(ValueError):
            blocks_for_extent(0, 32)
