"""Concurrent multi-process access to one shared ``TuningCache`` store.

Every scenario runs parametrized over the three persistence backends (legacy
single JSON file, sharded per-fingerprint directory, append-only log) — the
store URI, not the test, decides how the bytes hit disk.  The helpers are
module-level so they pickle for ``multiprocessing``; the fork start method
is used explicitly (the stores' advisory locking is POSIX/``fcntl``-based,
mirroring the platform the service targets).
"""

from __future__ import annotations

import multiprocessing
import sys

import pytest

from repro.autotune import TuningCache
from repro.autotune.store import AppendLogStore

pytestmark = pytest.mark.skipif(
    sys.platform == "win32", reason="fork start method and fcntl are POSIX-only"
)

BACKENDS = ("json", "sharded", "log")

SMALL_SPACE = {"thread_counts": [64], "block_counts": [16], "tile_candidates_per_geometry": 2}


def store_spec(backend: str, tmp_path) -> str:
    return {
        "json": str(tmp_path / "cache.json"),
        "sharded": f"dir:{tmp_path / 'cache-dir'}",
        "log": f"log:{tmp_path / 'cache.log'}",
    }[backend]


def _put_entry(spec: str, index: int, barrier) -> None:
    cache = TuningCache(spec)
    barrier.wait(timeout=30)  # maximise write overlap across all processes
    cache.put(f"key-{index}", {"value": index})


def _put_many(spec: str, writer: int, count: int, barrier) -> None:
    cache = TuningCache(spec)
    barrier.wait(timeout=30)
    for i in range(count):
        cache.put(f"w{writer}-{i}", {"writer": writer, "i": i})


def _prune_repeatedly(spec: str, keep: int, rounds: int, barrier) -> None:
    cache = TuningCache(spec)
    barrier.wait(timeout=30)
    for _ in range(rounds):
        cache.prune(keep)


def _open_then_put_after_prune(spec: str, opened, pruned) -> None:
    # Open (loading any in-memory mirror) BEFORE the parent prunes, write after.
    cache = TuningCache(spec)
    opened.set()
    assert pruned.wait(timeout=30)
    cache.put("late-write", {"value": "fresh"})


def _log_churn(spec: str, writer: int, count: int, barrier) -> None:
    # hammer a small key set so dead records pile up and compaction triggers
    store = AppendLogStore(spec, auto_compact_bytes=512, auto_compact_ratio=2)
    barrier.wait(timeout=30)
    for i in range(count):
        store.put(f"churn-{i % 4}", {"writer": writer, "i": i})


def _tune_against_cache(spec: str, queue) -> None:
    from repro.core.pipeline import counting_compiles
    from repro.service import TuneRequest
    from repro.autotune import autotune

    request = TuneRequest(kernel="matmul", sizes={"m": 24, "n": 24, "k": 24}, space=SMALL_SPACE)
    resolved = request.resolve()
    with counting_compiles() as compiles:
        report = autotune(
            resolved.program,
            options=resolved.options,
            space_options=resolved.space_options,
            cache=TuningCache(spec),
        )
    queue.put({"compiles": compiles.count, "report": report.to_dict()})


@pytest.mark.parametrize("backend", BACKENDS)
def test_concurrent_writers_lose_no_entries(backend, tmp_path):
    """8 processes write 8 distinct keys through one store simultaneously.

    Whatever the backend's granularity (whole-file lock, per-shard files,
    locked log appends), no last-writer-wins clobbering may drop an entry.
    """
    ctx = multiprocessing.get_context("fork")
    spec = store_spec(backend, tmp_path)
    barrier = ctx.Barrier(8)
    procs = [ctx.Process(target=_put_entry, args=(spec, i, barrier)) for i in range(8)]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=60)
        assert proc.exitcode == 0
    merged = TuningCache(spec)
    assert len(merged) == 8
    for i in range(8):
        assert merged.get(f"key-{i}") == {"value": i}


@pytest.mark.parametrize("backend", BACKENDS)
def test_concurrent_writers_and_pruner_interleave_safely(backend, tmp_path):
    """3 writers racing a repeated pruner: no corruption, no zombie entries.

    The final state must be a consistent store whose every entry carries the
    value its writer stored, and a closing prune must stick — whatever
    interleaving the scheduler produced.
    """
    ctx = multiprocessing.get_context("fork")
    spec = store_spec(backend, tmp_path)
    barrier = ctx.Barrier(4)
    writers = [
        ctx.Process(target=_put_many, args=(spec, w, 20, barrier)) for w in range(3)
    ]
    pruner = ctx.Process(target=_prune_repeatedly, args=(spec, 5, 10, barrier))
    for proc in writers + [pruner]:
        proc.start()
    for proc in writers + [pruner]:
        proc.join(timeout=120)
        assert proc.exitcode == 0
    # the store survived the race in a readable, self-consistent state
    final = TuningCache(spec)
    for key, value in final.scan():
        writer, i = key[1:].split("-")
        assert value == {"writer": int(writer), "i": int(i)}
    # and a quiescent prune leaves exactly the newest entries, durably
    final.prune(3)
    reloaded = TuningCache(spec)
    assert len(reloaded) <= 3
    assert [k for k, _ in reloaded.scan()] == [k for k, _ in final.scan()]


@pytest.mark.parametrize("backend", BACKENDS)
def test_pruned_entries_cannot_be_resurrected_by_live_writer(backend, tmp_path):
    """Regression (fork-based): a writer that loaded before a prune must not
    resurrect the pruned entries with its next save.

    The legacy JSON format's read-merge-write wrote the writer's whole
    in-memory mirror back over the file, undoing any concurrent prune; saves
    now overlay only the keys the writer actually wrote, and honour the
    prune's tombstones.  The sharded and log backends are prune-safe by
    construction — the same scenario runs against all three.
    """
    ctx = multiprocessing.get_context("fork")
    spec = store_spec(backend, tmp_path)
    seed = TuningCache(spec)
    for i in range(5):
        seed.put(f"k{i}", {"v": i})

    opened, pruned = ctx.Event(), ctx.Event()
    writer = ctx.Process(target=_open_then_put_after_prune, args=(spec, opened, pruned))
    writer.start()
    assert opened.wait(timeout=30)  # the writer holds a pre-prune view
    assert TuningCache(spec).prune(2) == 3
    pruned.set()
    writer.join(timeout=60)
    assert writer.exitcode == 0

    final = TuningCache(spec)
    assert [k for k, _ in final.scan()] == ["k3", "k4", "late-write"]
    for i in range(3):
        assert final.peek(f"k{i}") is None, f"k{i} was resurrected"


def test_append_log_compaction_under_load(tmp_path):
    """4 processes churn 4 keys through one tiny-threshold log concurrently.

    Compactions race appends (each rewrite swaps the log's inode under the
    other writers); no entry may be lost and the log must stay bounded
    instead of growing one line per put.
    """
    ctx = multiprocessing.get_context("fork")
    path = str(tmp_path / "churn.log")
    barrier = ctx.Barrier(4)
    procs = [
        ctx.Process(target=_log_churn, args=(path, w, 100, barrier)) for w in range(4)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=120)
        assert proc.exitcode == 0
    final = AppendLogStore(path)
    entries = dict(final.scan())
    assert sorted(entries) == [f"churn-{i}" for i in range(4)]
    for key, value in entries.items():
        assert value["i"] % 4 == int(key.split("-")[1])
    # 400 puts compacted down to 4 live entries: the file stays small
    assert final.stats()["bytes"] < 4096


def test_second_process_tuning_same_fingerprint_is_free(tmp_path):
    """Two processes, one fingerprint, one shared store: one compile run total.

    The first process tunes cold and persists; the second answers entirely
    from the shared store with zero pipeline compiles and a bit-identical
    report.  Runs against the sharded backend — the JSON path is covered by
    the service suite — and proves a store URI round-trips to a worker.
    """
    ctx = multiprocessing.get_context("fork")
    spec = f"dir:{tmp_path / 'cache-dir'}"
    queue = ctx.Queue()
    outcomes = []
    for _ in range(2):
        proc = ctx.Process(target=_tune_against_cache, args=(spec, queue))
        proc.start()
        proc.join(timeout=300)
        assert proc.exitcode == 0
        outcomes.append(queue.get(timeout=30))
    first, second = outcomes
    assert first["compiles"] > 0
    assert second["compiles"] == 0
    assert second["report"] == first["report"]
