"""Concurrent multi-process access to one shared ``TuningCache`` file.

The helpers are module-level so they pickle for ``multiprocessing``; the fork
start method is used explicitly (the cache's advisory locking is
POSIX/``fcntl``-based, mirroring the platform the service targets).
"""

from __future__ import annotations

import multiprocessing
import sys

import pytest

from repro.autotune import TuningCache

pytestmark = pytest.mark.skipif(
    sys.platform == "win32", reason="fork start method and fcntl are POSIX-only"
)

SMALL_SPACE = {"thread_counts": [64], "block_counts": [16], "tile_candidates_per_geometry": 2}


def _put_entry(path: str, index: int, barrier) -> None:
    cache = TuningCache(path)
    barrier.wait(timeout=30)  # maximise write overlap across all processes
    cache.put(f"key-{index}", {"value": index})


def _tune_against_cache(path: str, queue) -> None:
    from repro.core.pipeline import counting_compiles
    from repro.service import TuneRequest
    from repro.autotune import autotune

    request = TuneRequest(kernel="matmul", sizes={"m": 24, "n": 24, "k": 24}, space=SMALL_SPACE)
    resolved = request.resolve()
    with counting_compiles() as compiles:
        report = autotune(
            resolved.program,
            options=resolved.options,
            space_options=resolved.space_options,
            cache=TuningCache(path),
        )
    queue.put({"compiles": compiles.count, "report": report.to_dict()})


def test_concurrent_writers_lose_no_entries(tmp_path):
    """8 processes write 8 distinct keys through one file simultaneously.

    Every writer read-merge-writes under the exclusive ``fcntl`` lock, so no
    last-writer-wins clobbering may drop an entry.
    """
    ctx = multiprocessing.get_context("fork")
    path = str(tmp_path / "cache.json")
    barrier = ctx.Barrier(8)
    procs = [ctx.Process(target=_put_entry, args=(path, i, barrier)) for i in range(8)]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=60)
        assert proc.exitcode == 0
    merged = TuningCache(path)
    assert len(merged) == 8
    for i in range(8):
        assert merged.get(f"key-{i}") == {"value": i}


def test_second_process_tuning_same_fingerprint_is_free(tmp_path):
    """Two processes, one fingerprint, one cache file: one compile run total.

    The first process tunes cold and persists; the second answers entirely
    from the shared file with zero pipeline compiles and a bit-identical
    report.
    """
    ctx = multiprocessing.get_context("fork")
    path = str(tmp_path / "cache.json")
    queue = ctx.Queue()
    outcomes = []
    for _ in range(2):
        proc = ctx.Process(target=_tune_against_cache, args=(path, queue))
        proc.start()
        proc.join(timeout=300)
        assert proc.exitcode == 0
        outcomes.append(queue.get(timeout=30))
    first, second = outcomes
    assert first["compiles"] > 0
    assert second["compiles"] == 0
    assert second["report"] == first["report"]
