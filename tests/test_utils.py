"""Unit tests for repro.utils (fractions, naming, validation)."""

from fractions import Fraction

import pytest

from repro.utils import (
    NameGenerator,
    as_fraction,
    fraction_ceil,
    fraction_floor,
    fresh_name,
    gcd_many,
    lcm_many,
    require,
    require_positive,
    require_type,
)


class TestAsFraction:
    def test_int(self):
        assert as_fraction(7) == Fraction(7)

    def test_fraction_passthrough(self):
        value = Fraction(3, 4)
        assert as_fraction(value) is value

    def test_string(self):
        assert as_fraction("2/3") == Fraction(2, 3)

    def test_exact_float(self):
        assert as_fraction(0.5) == Fraction(1, 2)

    def test_inexact_float_rejected(self):
        with pytest.raises(ValueError):
            as_fraction(0.1)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            as_fraction(float("nan"))

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            as_fraction(True)

    def test_other_type_rejected(self):
        with pytest.raises(TypeError):
            as_fraction(object())


class TestRounding:
    @pytest.mark.parametrize(
        "value,expected",
        [(Fraction(7, 2), 3), (Fraction(-7, 2), -4), (Fraction(4), 4), (Fraction(0), 0)],
    )
    def test_floor(self, value, expected):
        assert fraction_floor(value) == expected

    @pytest.mark.parametrize(
        "value,expected",
        [(Fraction(7, 2), 4), (Fraction(-7, 2), -3), (Fraction(4), 4), (Fraction(0), 0)],
    )
    def test_ceil(self, value, expected):
        assert fraction_ceil(value) == expected


class TestGcdLcm:
    def test_gcd(self):
        assert gcd_many([12, 18, 24]) == 6

    def test_gcd_empty(self):
        assert gcd_many([]) == 0

    def test_lcm(self):
        assert lcm_many([4, 6]) == 12

    def test_lcm_with_zero(self):
        assert lcm_many([0, 5]) == 5

    def test_lcm_empty(self):
        assert lcm_many([]) == 1


class TestNameGenerator:
    def test_fresh_avoids_reserved(self):
        gen = NameGenerator(["x"])
        assert gen.fresh("x") == "x0"

    def test_fresh_unreserved(self):
        gen = NameGenerator()
        assert gen.fresh("y") == "y"
        assert gen.fresh("y") == "y0"

    def test_fresh_sequence_distinct(self):
        gen = NameGenerator()
        names = gen.fresh_sequence("c", 5)
        assert len(set(names)) == 5

    def test_contains(self):
        gen = NameGenerator()
        gen.reserve("a")
        assert "a" in gen

    def test_module_level_fresh_name_unique(self):
        assert fresh_name("t") != fresh_name("t")


class TestValidation:
    def test_require_ok(self):
        require(True, "fine")

    def test_require_fails(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")

    def test_require_type_ok(self):
        require_type(3, int, "x")

    def test_require_type_fails(self):
        with pytest.raises(TypeError, match="x must be"):
            require_type("3", int, "x")

    def test_require_positive(self):
        require_positive(1, "n")
        with pytest.raises(ValueError):
            require_positive(0, "n")
