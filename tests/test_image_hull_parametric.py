"""Unit tests for images, counting, hulls, parametric bounds and dependences."""

import pytest

from repro.polyhedral.affine import AffineExpr, AffineFunction
from repro.polyhedral.constraints import Constraint
from repro.polyhedral.counting import (
    bounding_box_point_count,
    count_integer_points,
    enumerate_integer_points,
    intersection_point_count,
    union_point_count,
)
from repro.polyhedral.dependence import AccessDescriptor, DependenceAnalyzer
from repro.polyhedral.hull import convex_union_vertices, rectangular_hull
from repro.polyhedral.image import image_of_polyhedron, preimage_of_polyhedron
from repro.polyhedral.parametric import (
    QuasiAffineBound,
    parametric_bounds,
    resolve_quasi_affine,
    static_extent_bound,
)
from repro.polyhedral.polyhedron import Polyhedron

i, j, k = AffineExpr.var("i"), AffineExpr.var("j"), AffineExpr.var("k")
N, iT = AffineExpr.var("N"), AffineExpr.var("iT")


class TestImage:
    def test_shifted_identity(self):
        dom = Polyhedron.from_bounds({"i": (10, 14)})
        fn = AffineFunction(["i"], [i + 1])
        img = image_of_polyhedron(dom, fn, ["d0"])
        assert img.bounding_box() == {"d0": (11, 15)}

    def test_rank_deficient_image(self):
        dom = Polyhedron.from_bounds({"i": (0, 4), "j": (0, 9)})
        fn = AffineFunction(["i", "j"], [i])
        img = image_of_polyhedron(dom, fn, ["d0"])
        assert img.count_points() == 5

    def test_sum_access(self):
        dom = Polyhedron.from_bounds({"i": (10, 14), "j": (10, 14)})
        fn = AffineFunction(["i", "j"], [i + j, j + 1])
        img = image_of_polyhedron(dom, fn, ["a", "b"])
        assert img.bounding_box() == {"a": (20, 28), "b": (11, 15)}

    def test_output_name_clash_rejected(self):
        dom = Polyhedron.from_bounds({"i": (0, 1)})
        with pytest.raises(ValueError):
            image_of_polyhedron(dom, AffineFunction(["i"], [i]), ["i"])

    def test_preimage(self):
        data = Polyhedron.from_bounds({"d": (5, 8)})
        fn = AffineFunction(["i"], [i + 3])
        pre = preimage_of_polyhedron(data, fn)
        assert pre.bounding_box() == {"i": (2, 5)}


class TestCounting:
    def test_count_matches_enumeration(self):
        poly = Polyhedron.from_bounds({"i": (0, 3), "j": (0, 2)})
        assert count_integer_points(poly) == len(list(enumerate_integer_points(poly))) == 12

    def test_unbound_params_rejected(self):
        poly = Polyhedron(["i"], list(Constraint.bounds("i", 0, N)), params=["N"])
        with pytest.raises(ValueError):
            count_integer_points(poly)
        assert count_integer_points(poly, {"N": 3}) == 4

    def test_union_counts_each_point_once(self):
        a = Polyhedron.from_bounds({"i": (0, 5)})
        b = Polyhedron.from_bounds({"i": (3, 8)})
        assert union_point_count([a, b]) == 9

    def test_intersection_count(self):
        a = Polyhedron.from_bounds({"i": (0, 5)})
        b = Polyhedron.from_bounds({"i": (3, 8)})
        assert intersection_point_count(a, b) == 3

    def test_bounding_box_point_count(self):
        tri = Polyhedron(
            ["i", "j"],
            list(Constraint.bounds("i", 0, 3))
            + [Constraint.greater_equal(j, 0), Constraint.less_equal(j, i)],
        )
        assert bounding_box_point_count(tri) == 16  # 4x4 box over-approximates 10 points


class TestParametricBounds:
    def test_concrete(self):
        poly = Polyhedron.from_bounds({"i": (2, 9)})
        bound = parametric_bounds(poly, "i")
        assert bound.evaluate({}) == (2, 9) and bound.extent({}) == 8

    def test_parametric_in_n(self):
        poly = Polyhedron(["i"], list(Constraint.bounds("i", 1, N)), params=["N"])
        bound = parametric_bounds(poly, "i")
        assert bound.evaluate({"N": 10}) == (1, 10)

    def test_unbounded_raises(self):
        poly = Polyhedron(["i"], [Constraint.greater_equal(i, 0)])
        with pytest.raises(ValueError):
            parametric_bounds(poly, "i")

    def test_quasi_affine_bound_eval(self):
        bound = QuasiAffineBound("min", (iT + 31, N - 1))
        assert bound.evaluate_int({"iT": 0, "N": 16}) == 15
        assert bound.evaluate_int({"iT": 0, "N": 100}) == 31

    def test_resolve_constant_difference(self):
        bound = QuasiAffineBound("max", (iT, iT - 2))
        assert resolve_quasi_affine(bound) == iT

    def test_resolve_with_context(self):
        context = Polyhedron(["iT"], [Constraint.greater_equal(iT, 0)])
        bound = QuasiAffineBound("max", (iT, AffineExpr.const(0)))
        assert resolve_quasi_affine(bound, context) == iT

    def test_resolve_unresolvable(self):
        bound = QuasiAffineBound("max", (iT, N))
        result = resolve_quasi_affine(bound)
        assert isinstance(result, QuasiAffineBound)

    def test_static_extent_bound(self):
        lower = QuasiAffineBound("max", (iT,))
        upper = QuasiAffineBound("min", (iT + 31, N - 1))
        assert static_extent_bound(lower, upper) == 32


class TestHull:
    def test_union_box_fig1(self):
        dom = Polyhedron.from_bounds({"i": (10, 14), "j": (10, 14), "k": (11, 20)})
        spaces = [
            image_of_polyhedron(dom, AffineFunction(["i", "j", "k"], [i, j + 1]), ["d0", "d1"]),
            image_of_polyhedron(dom, AffineFunction(["i", "j", "k"], [i + j, j + 1]), ["d0", "d1"]),
            image_of_polyhedron(dom, AffineFunction(["i", "j", "k"], [i, k]), ["d0", "d1"]),
        ]
        hull = rectangular_hull(spaces)
        assert hull.evaluate_box() == {"d0": (10, 28), "d1": (11, 20)}
        assert hull.footprint() == 19 * 10

    def test_parametric_tile_hull(self):
        constraints = [
            Constraint.greater_equal(i, iT),
            Constraint.greater_equal(i, 0),
            Constraint.less_equal(i, iT + 31),
            Constraint.less_equal(i, N - 1),
        ]
        dom = Polyhedron(["i"], constraints, params=["iT", "N"])
        context = Polyhedron(
            ["iT", "N"],
            [Constraint.greater_equal(iT, 0), Constraint.less_equal(iT, N - 1),
             Constraint.greater_equal(N, 32)],
        )
        spaces = [
            image_of_polyhedron(dom, AffineFunction(["i"], [i - 1]), ["d0"]),
            image_of_polyhedron(dom, AffineFunction(["i"], [i + 1]), ["d0"]),
        ]
        hull = rectangular_hull(spaces, context)
        offset = hull.resolved_lower_bound("d0")
        assert offset == iT - 1
        assert hull.allocation_extent("d0", offset) == 34

    def test_mixed_dims_rejected(self):
        with pytest.raises(ValueError):
            rectangular_hull(
                [Polyhedron.from_bounds({"a": (0, 1)}), Polyhedron.from_bounds({"b": (0, 1)})]
            )

    def test_convex_union_vertices(self):
        a = Polyhedron.from_bounds({"x": (0, 2), "y": (0, 2)})
        b = Polyhedron.from_bounds({"x": (2, 4), "y": (0, 2)})
        vertices = convex_union_vertices([a, b])
        xs = {tuple(v) for v in vertices}
        assert (0, 0) in xs and (4, 2) in xs


class TestDependence:
    def _jacobi_accesses(self):
        domain = Polyhedron.from_bounds({"t": (0, 3), "i": (1, 6)}, dim_order=["t", "i"])
        t, ii = AffineExpr.var("t"), AffineExpr.var("i")
        write = AccessDescriptor("S", "A", AffineFunction(["t", "i"], [t + 1, ii]), domain, True, 0)
        read = AccessDescriptor("S", "A", AffineFunction(["t", "i"], [t, ii + 1]), domain, False, 0)
        return write, read

    def test_flow_dependence_found(self):
        write, read = self._jacobi_accesses()
        deps = DependenceAnalyzer([write, read]).flow_dependences()
        assert deps, "expected a flow dependence between time steps"
        assert all(d.level == 1 for d in deps)

    def test_distance_vector(self):
        write, read = self._jacobi_accesses()
        deps = DependenceAnalyzer([write, read]).flow_dependences()
        distances = deps[0].distance_vector()
        assert distances[0] == 1 and distances[1] == -1

    def test_negative_component_detected(self):
        write, read = self._jacobi_accesses()
        dep = DependenceAnalyzer([write, read]).flow_dependences()[0]
        assert dep.allows_negative_component("i")
        assert not dep.allows_negative_component("t")

    def test_no_dependence_between_different_arrays(self):
        domain = Polyhedron.from_bounds({"i": (0, 3)})
        a = AccessDescriptor("S", "A", AffineFunction(["i"], [i]), domain, True, 0)
        b = AccessDescriptor("S", "B", AffineFunction(["i"], [i]), domain, False, 0)
        assert DependenceAnalyzer([a, b]).dependences() == []

    def test_parallel_loop_detection(self):
        domain = Polyhedron.from_bounds({"i": (0, 3)})
        write = AccessDescriptor("S", "A", AffineFunction(["i"], [i]), domain, True, 0)
        read = AccessDescriptor("S", "A", AffineFunction(["i"], [i]), domain, False, 0)
        analyzer = DependenceAnalyzer([write, read])
        assert analyzer.is_loop_parallel("i")
