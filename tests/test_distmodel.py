"""Tests of ``repro.distmodel`` and the distributed-GEMM tuning family."""

from __future__ import annotations

import pytest

from repro.autotune import Configuration, autotune, tuning_fingerprint
from repro.autotune.distspace import DistributedSpace, divisors, summa_mapping
from repro.autotune.space import SpaceOptions
from repro.distmodel import (
    LinkModel,
    Phase,
    PhaseSchedule,
    SummaMapping,
    broadcast_cost,
    gather_cost,
    gemm_schedule,
    mapping_infeasible_reason,
    pe_footprint_bytes,
    shift_cost,
)
from repro.kernels import build_distributed_gemm_program, build_jacobi2d_program
from repro.kernels.registry import get_kernel
from repro.machine import GridSpec, WSE2_GRID
from repro.runtime.interpreter import run_program
from repro.telemetry.history import HistoryRecord, group_records

LINK = LinkModel.from_grid(WSE2_GRID)

#: the Snippet 3 operating point: 4×4 sub-grid, 56³ problem, 14³ tiles
SNIPPET3 = dict(m=56, n=56, k=56)
SNIPPET3_MAPPING = SummaMapping(grid_p=4, mt=14, nt=14, kt=14, schedule="pipelined", depth=2)


# -- link model --------------------------------------------------------------------
class TestLinkModel:
    def test_costs_monotone_in_message_size(self):
        for cost in (
            lambda w: broadcast_cost(LINK, w, 4),
            lambda w: gather_cost(LINK, w, 4),
            lambda w: shift_cost(LINK, w, hops=4),
        ):
            samples = [cost(w) for w in (1, 64, 512, 4096, 65536)]
            assert samples == sorted(samples)
            assert samples[0] < samples[-1]

    def test_costs_monotone_in_grid_size(self):
        for cost in (
            lambda p: broadcast_cost(LINK, 4096, p),
            lambda p: gather_cost(LINK, 4096, p),
        ):
            samples = [cost(p) for p in (2, 4, 8, 16)]
            assert samples == sorted(samples)
            assert samples[0] < samples[-1]

    def test_zero_words_cost_nothing(self):
        assert broadcast_cost(LINK, 0, 4) == 0.0
        assert gather_cost(LINK, 0, 4) == 0.0
        assert shift_cost(LINK, 0) == 0.0

    def test_gather_per_byte_strictly_slower_under_contention(self):
        """The Snippet 3 asymmetry: D2H contended vs H2D ≥ 2.5× per byte."""
        words_out = 56 * 56 * 2  # A and B onto the grid
        words_back = 56 * 56  # C back to the host
        out_per_word = broadcast_cost(LINK, words_out, 4) / words_out
        back_per_word = gather_cost(LINK, words_back, 4) / words_back
        assert back_per_word > out_per_word
        assert back_per_word / out_per_word >= 2.5

    def test_snippet3_hand_computed_cycles(self):
        """Model vs the measured Snippet 3 numbers (within 2% tolerance)."""
        broadcast = broadcast_cost(LINK, 56 * 56 * 2, 4)
        gather = gather_cost(LINK, 56 * 56, 4)
        assert broadcast == pytest.approx(7226, rel=0.02)
        assert gather == pytest.approx(10522, rel=0.02)
        # the measured effective bandwidths: 0.868 and 0.298 words/cycle
        assert (56 * 56 * 2) / broadcast == pytest.approx(0.868, rel=0.02)
        assert (56 * 56) / gather == pytest.approx(0.298, rel=0.02)


# -- phase schedules ---------------------------------------------------------------
class TestPhaseSchedule:
    def test_serial_phase_exposes_all_communication(self):
        phase = Phase.serial("distribute", comm_cycles=100.0)
        assert phase.exposed_comm_cycles == 100.0
        assert phase.hidden_comm_cycles == 0.0
        assert phase.elapsed_cycles == 100.0

    def test_elapsed_is_compute_plus_exposed(self):
        phase = Phase(
            name="compute",
            compute_cycles=500.0,
            comm_cycles=300.0,
            exposed_comm_cycles=40.0,
            overlapped=True,
        )
        assert phase.elapsed_cycles == 540.0
        assert phase.hidden_comm_cycles == 260.0

    def test_hidden_fraction_counts_only_overlappable_phases(self):
        schedule = PhaseSchedule(
            phases=(
                Phase.serial("distribute", comm_cycles=1000.0),
                Phase(
                    name="compute",
                    compute_cycles=400.0,
                    comm_cycles=200.0,
                    exposed_comm_cycles=50.0,
                    overlapped=True,
                ),
            )
        )
        # the serial distribute phase never enters the denominator
        assert schedule.overlappable_comm_cycles == 200.0
        assert schedule.hidden_fraction == pytest.approx(0.75)

    def test_blocking_schedule_hides_nothing(self):
        mapping = SummaMapping(grid_p=4, mt=14, nt=14, kt=14, schedule="blocking")
        schedule = gemm_schedule(
            SNIPPET3["m"], SNIPPET3["n"], SNIPPET3["k"], mapping, WSE2_GRID
        )
        assert schedule.hidden_fraction == 0.0

    def test_time_ms_uses_grid_clock(self):
        # 850 cycles at 0.85 GHz = 1 us = 1e-3 ms
        schedule = PhaseSchedule(phases=(Phase.serial("gather", comm_cycles=850.0),))
        assert schedule.time_ms(WSE2_GRID) == pytest.approx(1e-3)


# -- the SUMMA gemm model ----------------------------------------------------------
class TestGemmSchedule:
    @pytest.mark.parametrize("shape", [(56, 56, 56), (64, 64, 64), (32, 64, 128)])
    @pytest.mark.parametrize("depth", [1, 2, 4])
    def test_pipelined_never_slower_than_blocking(self, shape, depth):
        m, n, k = shape
        for p in (2, 4):
            for kt in divisors(k // p):
                blocking = SummaMapping(p, m // p, n // p, kt, "blocking")
                pipelined = SummaMapping(p, m // p, n // p, kt, "pipelined", depth)
                if mapping_infeasible_reason(m, n, k, pipelined, WSE2_GRID):
                    continue
                t_block = gemm_schedule(m, n, k, blocking, WSE2_GRID).total_cycles
                t_pipe = gemm_schedule(m, n, k, pipelined, WSE2_GRID).total_cycles
                assert t_pipe <= t_block + 1e-9

    def test_snippet3_pipelined_hides_panel_broadcasts(self):
        schedule = gemm_schedule(56, 56, 56, SNIPPET3_MAPPING, WSE2_GRID)
        assert schedule.hidden_fraction >= 0.5
        names = [phase.name for phase in schedule.phases]
        assert names == ["distribute", "compute", "gather"]

    def test_footprint_counts_pipeline_panel_buffers(self):
        blocking = SummaMapping(4, 14, 14, 14, "blocking")
        pipelined = SummaMapping(4, 14, 14, 14, "pipelined", depth=4)
        shallow = pe_footprint_bytes(56, 56, 56, blocking, WSE2_GRID)
        deep = pe_footprint_bytes(56, 56, 56, pipelined, WSE2_GRID)
        # depth+1 panel-buffer sets vs blocking's one
        assert deep - shallow == 4 * 14 * (14 + 14) * WSE2_GRID.word_bytes

    def test_infeasible_reasons(self):
        m = n = k = 56
        assert "does not divide" in mapping_infeasible_reason(
            m, n, k, SummaMapping(3, 14, 14, 14), WSE2_GRID
        )
        assert "exceeds fabric" in mapping_infeasible_reason(
            m, n, k, SummaMapping(28, 2, 2, 2), WSE2_GRID
        )
        assert "does not tile" in mapping_infeasible_reason(
            m, n, k, SummaMapping(4, 5, 14, 14), WSE2_GRID
        )
        # 104³ per-PE blocks are ~32k words against the 12k-word PE memory
        assert "footprint" in mapping_infeasible_reason(
            208, 208, 208, SummaMapping(2, 104, 104, 104), WSE2_GRID
        )
        with pytest.raises(ValueError, match="infeasible distributed mapping"):
            gemm_schedule(m, n, k, SummaMapping(3, 14, 14, 14), WSE2_GRID)


# -- configuration extras ----------------------------------------------------------
class TestConfigurationExtras:
    def test_extras_round_trip_and_key(self):
        config = Configuration.make(
            16, 1, {"i": 14, "j": 14, "k": 14}, use_scratchpad=False,
            extras={"schedule": "pipelined", "grid_p": 4, "depth": 2},
        )
        assert config.extras_dict == {"schedule": "pipelined", "grid_p": 4, "depth": 2}
        assert Configuration.from_dict(config.to_dict()) == config
        assert "grid_p-4" in config.key()

    def test_empty_extras_keep_legacy_key_and_payload(self):
        plain = Configuration.make(32, 128, {"i": 8, "j": 16})
        assert plain.key() == "b32.t128.i8_j16.spm"
        assert "extras" not in plain.to_dict()

    def test_extras_distinguish_configurations(self):
        base = dict(num_blocks=16, threads_per_block=1, tile_sizes={"i": 8})
        a = Configuration.make(**base, extras={"grid_p": 2})
        b = Configuration.make(**base, extras={"grid_p": 4})
        assert a != b and a.key() != b.key()


# -- the distributed space ---------------------------------------------------------
class TestDistributedSpace:
    @pytest.fixture(scope="class")
    def space(self):
        return DistributedSpace(build_distributed_gemm_program(16, 16, 16), WSE2_GRID)

    def test_seed_is_blocking_whole_block_on_largest_grid(self, space):
        seed = space.mapping(space.seed_configuration())
        assert seed.schedule == "blocking"
        assert seed.grid_p == max(space.grid_choices())
        assert (seed.mt, seed.nt, seed.kt) == (
            16 // seed.grid_p, 16 // seed.grid_p, 16 // seed.grid_p
        )

    def test_enumerate_yields_feasible_mappings_seed_first(self, space):
        configs = space.enumerate()
        assert configs[0] == space.seed_configuration()
        assert len(configs) == len(set(configs)) > 4
        schedules = set()
        for config in configs:
            mapping = space.mapping(config)
            assert mapping_infeasible_reason(16, 16, 16, mapping, WSE2_GRID) is None
            assert config.num_blocks == mapping.grid_p ** 2
            assert config.threads_per_block == 1
            schedules.add(mapping.schedule)
        assert schedules == {"blocking", "pipelined"}

    def test_neighbours_are_feasible_one_knob_moves(self, space):
        start = space.seed_configuration()
        moves = space.neighbours(start)
        assert moves
        for config in moves:
            assert config != start
            mapping = space.mapping(config)
            assert mapping_infeasible_reason(16, 16, 16, mapping, WSE2_GRID) is None
        # the schedule toggle must be reachable
        assert any(space.mapping(c).schedule == "pipelined" for c in moves)

    def test_describe_embeds_grid_spec(self, space):
        payload = space.describe()
        assert payload["family"] == "distributed-gemm"
        assert payload["grid"]["name"] == WSE2_GRID.name
        assert payload["grid"]["hop_latency_cycles"] == WSE2_GRID.hop_latency_cycles

    def test_summa_mapping_none_for_single_device_config(self):
        plain = Configuration.make(16, 64, {"i": 8, "j": 8, "k": 8})
        assert summa_mapping(plain, ("i", "j", "k")) is None


# -- end-to-end tuning -------------------------------------------------------------
DIST_SPACE = SpaceOptions(tile_candidates_per_geometry=2)


class TestDistributedAutotune:
    def test_tunes_with_model_dist_provenance(self):
        report = autotune(
            build_distributed_gemm_program(16, 16, 16),
            grid=WSE2_GRID,
            space_options=DIST_SPACE,
        )
        assert report.best.measurement_kind == "model-dist"
        assert report.best.feasible
        metadata = report.best.measurement.metadata
        assert set(metadata["breakdown"]) == {"distribute", "compute", "gather"}
        assert 0.0 <= metadata["hidden_fraction"] <= 1.0
        assert metadata["grid"] == WSE2_GRID.name
        extras = report.best.configuration.extras_dict
        assert {"grid_p", "schedule", "depth"} <= set(extras)

    def test_round_trips_through_cache(self, tmp_path):
        cache = tmp_path / "cache.json"
        program = build_distributed_gemm_program(16, 16, 16)
        cold = autotune(program, grid=WSE2_GRID, space_options=DIST_SPACE, cache=cache)
        warm = autotune(program, grid=WSE2_GRID, space_options=DIST_SPACE, cache=cache)
        assert not cold.from_cache and warm.from_cache
        assert warm.best.configuration == cold.best.configuration
        assert warm.best.measurement_kind == "model-dist"

    def test_grid_spec_is_a_fingerprint_ingredient(self):
        program = build_distributed_gemm_program(16, 16, 16)
        wide = tuning_fingerprint(program, grid=WSE2_GRID)
        narrow = tuning_fingerprint(program, grid=GridSpec(grid_p=4))
        single = tuning_fingerprint(program)
        assert len({wide, narrow, single}) == 3

    def test_tuner_prefers_pipelined_on_compute_bound_shape(self):
        report = autotune(
            build_distributed_gemm_program(32, 32, 32),
            grid=WSE2_GRID,
            space_options=DIST_SPACE,
        )
        assert report.best.configuration.extras_dict["schedule"] == "pipelined"
        assert report.best.measurement.metadata["hidden_fraction"] >= 0.5

    def test_measured_backends_refuse_grid_requests(self):
        with pytest.raises(ValueError, match="cannot price distributed"):
            autotune(
                build_distributed_gemm_program(16, 16, 16),
                grid=WSE2_GRID,
                backend="measure-py:",
            )

    def test_history_variant_keeps_grids_apart(self, tmp_path):
        from repro.telemetry.history import HistoryStore

        history = HistoryStore(tmp_path / "history.jsonl")
        program = build_distributed_gemm_program(16, 16, 16)
        autotune(program, grid=WSE2_GRID, space_options=DIST_SPACE, history=history)
        autotune(program, grid=GridSpec(grid_p=4), space_options=DIST_SPACE, history=history)
        autotune(program, space_options=SpaceOptions(
            thread_counts=(64,), block_counts=(16,), tile_candidates_per_geometry=2
        ), history=history)
        groups = group_records(history.records())
        assert len(groups) == 3
        variants = {key[1] for key in groups}
        assert f"16x16:{WSE2_GRID.name}" in variants
        assert "" in variants  # the single-device request


# -- history variant plumbing ------------------------------------------------------
class TestHistoryVariant:
    def test_variant_round_trips_and_splits_groups(self):
        base = dict(kernel="distributed-gemm", fingerprint="f", spec_name="s")
        a = HistoryRecord(**base, variant="16x16:WSE-2", winner_ms=1.0)
        b = HistoryRecord(**base, variant="4x4:toy", winner_ms=2.0)
        legacy = HistoryRecord.from_dict({"kernel": "distributed-gemm"})
        assert HistoryRecord.from_dict(a.to_dict()).variant == "16x16:WSE-2"
        assert legacy.variant == ""  # pre-variant records parse unchanged
        assert a.group_key() != b.group_key()
        assert len(group_records([a, b, legacy])) == 3


# -- satellite kernels -------------------------------------------------------------
class TestJacobi2d:
    def test_matches_reference_stencil(self):
        import numpy as np

        program = build_jacobi2d_program(6, 6)
        rng = np.random.default_rng(0)
        a = rng.random((8, 8))
        state = run_program(program, inputs={"A": a.copy(), "B": np.zeros((8, 8))})
        expected = (
            a[1:-1, 1:-1] + a[:-2, 1:-1] + a[2:, 1:-1] + a[1:-1, :-2] + a[1:-1, 2:]
        ) / 5.0
        assert np.allclose(state.data("B")[1:-1, 1:-1], expected)

    def test_registered_with_single_device_family(self):
        kernel = get_kernel("jacobi2d")
        assert kernel.family == "single-device"
        assert kernel.grid is None
        assert "family" in kernel.describe()

    def test_distributed_gemm_registered_with_grid(self):
        kernel = get_kernel("distributed-gemm")
        assert kernel.family == "distributed"
        assert kernel.grid == WSE2_GRID
        assert kernel.describe()["grid"]["grid_p"] == WSE2_GRID.grid_p
