"""Tests of the ``repro.service`` tuning server.

Integration coverage runs a real HTTP server.  The in-process suites use the
*thread* executor so every pipeline compile lands on the process-global
:data:`COMPILE_COUNTER` — the acceptance check that N concurrent identical
requests cost exactly one tuning run's compiles.  The process-pool suite and
the SIGTERM test exercise the multi-process deployment shape.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.core.pipeline import COMPILE_COUNTER
from repro.autotune import TuningCache, autotune
from repro.service import (
    PendingTuning,
    ServiceError,
    ServiceUnavailable,
    TuneRequest,
    TuningClient,
    TuningServer,
    TuningService,
    execute_request,
)

SMALL_SPACE = {"thread_counts": [64], "block_counts": [16], "tile_candidates_per_geometry": 2}
WIDE_SPACE = {
    "thread_counts": [64, 128],
    "block_counts": [16, 32],
    "tile_candidates_per_geometry": 2,
}


def matmul_request(m: int = 32, **overrides) -> TuneRequest:
    payload = {"kernel": "matmul", "sizes": {"m": m, "n": m, "k": m}, "space": SMALL_SPACE}
    payload.update(overrides)
    return TuneRequest(**payload)


@pytest.fixture
def thread_server():
    server = TuningServer(port=0, executor="thread", max_workers=4).start()
    yield server
    server.stop()


# -- protocol ----------------------------------------------------------------------
class TestTuneRequest:
    def test_round_trips_through_dict(self):
        request = matmul_request(seed=7, eval_workers=2, check_correctness=True)
        assert TuneRequest.from_dict(request.to_dict()) == request

    def test_rejects_malformed_requests(self):
        with pytest.raises(ValueError, match="strategy"):
            TuneRequest(kernel="matmul", strategy="simulated-annealing")
        with pytest.raises(ValueError, match="space fields"):
            TuneRequest(kernel="matmul", space={"warp_counts": [2]})
        with pytest.raises(ValueError, match="eval_workers"):
            TuneRequest(kernel="matmul", eval_workers=0)
        with pytest.raises(ValueError, match="integer"):
            TuneRequest(kernel="matmul", sizes={"m": 32.9})  # no silent truncation
        with pytest.raises(ValueError, match="integer"):
            TuneRequest(kernel="matmul", sizes={"m": True})
        with pytest.raises(ValueError, match="list of integers"):
            # a JSON string must not be iterated character-by-character
            TuneRequest(kernel="matmul", space={"thread_counts": "64"})
        with pytest.raises(ValueError, match="list of booleans"):
            TuneRequest(kernel="matmul", space={"scratchpad_choices": "yes"})
        with pytest.raises(ValueError, match="list of booleans"):
            TuneRequest(kernel="matmul", space={"scratchpad_choices": ["true"]})
        with pytest.raises(ValueError, match="tile_candidates_per_geometry"):
            TuneRequest(kernel="matmul", space={"tile_candidates_per_geometry": "lots"})
        with pytest.raises(ValueError, match="check_correctness"):
            TuneRequest(kernel="matmul", check_correctness="false")
        with pytest.raises(ValueError, match="unknown TuneRequest fields"):
            TuneRequest.from_dict({"kernel": "matmul", "gpu": "H100"})
        with pytest.raises(ValueError, match="kernel"):
            TuneRequest.from_dict({"sizes": {"m": 8}})

    def test_resolve_rejects_unknown_kernel_and_sizes(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            TuneRequest(kernel="no_such_kernel").resolve()
        with pytest.raises(ValueError, match="size parameters"):
            TuneRequest(kernel="matmul", sizes={"batch": 4}).resolve()

    def test_fingerprint_matches_the_session_cache_key(self):
        """The service's dedup key must be the exact key autotune caches under."""
        request = matmul_request()
        resolved = request.resolve()
        report = autotune(resolved.program, space_options=resolved.space_options)
        assert report.fingerprint == resolved.fingerprint

    def test_backend_travels_and_splits_the_fingerprint(self):
        base = matmul_request()
        measured = matmul_request(backend="measure-py:warmup=0,repeat=2")
        assert TuneRequest.from_dict(measured.to_dict()) == measured
        assert TuneRequest.from_dict(base.to_dict()).backend == "model:"
        # model-priced and measured requests must never dedup to one job
        assert base.resolve().fingerprint != measured.resolve().fingerprint

    def test_bad_backend_uri_rejected_at_validation(self):
        with pytest.raises(ValueError, match="unknown evaluation backend"):
            TuneRequest(kernel="matmul", backend="cuda:")
        with pytest.raises(ValueError, match="key=value"):
            TuneRequest(kernel="matmul", backend="measure-py:warmup")


# -- worker ------------------------------------------------------------------------
class TestWorker:
    def test_cold_run_reports_compiles(self):
        outcome = execute_request(matmul_request(m=16).to_dict())
        assert outcome["compiles"] > 0
        assert not outcome["from_cache"]
        assert outcome["report"]["best"]["feasible"]

    def test_warm_run_from_shared_cache_file_is_free(self, tmp_path):
        path = str(tmp_path / "cache.json")
        payload = matmul_request(m=16).to_dict()
        cold = execute_request(payload, cache_path=path)
        warm = execute_request(payload, cache_path=path)
        assert warm["from_cache"] and warm["compiles"] == 0
        assert warm["report"] == cold["report"]


# -- engine ------------------------------------------------------------------------
class TestTuningService:
    def test_draining_rejects_new_submissions(self):
        service = TuningService(executor="thread", max_workers=1)
        job, outcome = service.submit(matmul_request(m=16).to_dict())
        service.drain()
        assert service.job(job.id).status == "done"
        with pytest.raises(ServiceUnavailable):
            service.submit(matmul_request(m=24).to_dict())

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            TuningService(executor="mpi")
        with pytest.raises(ValueError, match="max_workers"):
            TuningService(executor="thread", max_workers=0)
        with pytest.raises(ValueError, match="max_finished_jobs"):
            TuningService(executor="thread", max_finished_jobs=0)

    def test_broken_pool_fails_the_job_instead_of_wedging_the_fingerprint(self):
        service = TuningService(executor="thread", max_workers=1)
        service._pool.shutdown(wait=True)  # simulate a dead worker pool
        payload = matmul_request(m=16).to_dict()
        job, outcome = service.submit(payload)
        assert outcome == "error" and job.status == "error"
        assert "cannot schedule new futures" in job.error
        # the fingerprint was rolled back: nothing is wedged in flight
        assert job.fingerprint not in service._inflight

    def test_server_spec_reaches_the_worker(self):
        """The worker must tune for the service's machine, not the default."""
        import dataclasses

        from repro.machine import GEFORCE_8800_GTX

        custom = dataclasses.replace(GEFORCE_8800_GTX, name="Custom GPU (modelled)")
        service = TuningService(executor="thread", max_workers=1, spec=custom)
        payload = matmul_request(m=16).to_dict()
        job, outcome = service.submit(payload)
        assert outcome == "created"
        service.drain()
        job = service.job(job.id)
        assert job.status == "done"
        assert job.report["spec_name"] == "Custom GPU (modelled)"
        # the worker's fingerprint agrees with the server's dedup key
        assert job.report["fingerprint"] == job.fingerprint

    def test_finished_jobs_are_evicted_to_bound_memory(self):
        service = TuningService(executor="thread", max_workers=1, max_finished_jobs=2)
        payload = matmul_request(m=16).to_dict()
        first, _ = service.submit(payload)
        service.drain()  # first job done and its report cached
        # reopen acceptance for the cached-path submissions below
        service._draining = False
        jobs = [service.submit(payload)[0] for _ in range(3)]
        assert all(job.from_cache for job in jobs)
        # only the newest max_finished_jobs records survive
        assert service.job(first.id) is None
        assert service.job(jobs[0].id) is None
        assert service.job(jobs[-1].id) is not None


# -- HTTP integration --------------------------------------------------------------
class TestHTTPServer:
    def test_healthz_and_kernels(self, thread_server):
        client = TuningClient(thread_server.url)
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["executor"] == "thread"
        names = [k["name"] for k in client.kernels()["kernels"]]
        assert "matmul" in names and "jacobi1d" in names

    def test_unknown_endpoint_and_job_are_404(self, thread_server):
        client = TuningClient(thread_server.url)
        with pytest.raises(ServiceError) as error:
            client.status("not-a-job")
        assert error.value.status == 404
        with pytest.raises(ServiceError) as error:
            client._call("GET", "/nope")
        assert error.value.status == 404

    def test_malformed_tune_requests_are_400(self, thread_server):
        client = TuningClient(thread_server.url)
        with pytest.raises(ServiceError) as error:
            client.submit({"kernel": "no_such_kernel"})
        assert error.value.status == 400
        with pytest.raises(ServiceError) as error:
            client.submit({"kernel": "matmul", "strategy": "annealing"})
        assert error.value.status == 400

    def test_served_report_matches_direct_autotune(self, thread_server):
        request = matmul_request()
        client = TuningClient(thread_server.url)
        served = client.tune(request, timeout=300)
        resolved = request.resolve()
        direct = autotune(resolved.program, space_options=resolved.space_options)
        assert served.to_dict() == direct.to_dict()

    def test_hybrid_backend_round_trip(self, thread_server):
        """submit --backend hybrid:...: measured provenance over the wire."""
        client = TuningClient(thread_server.url)
        request = matmul_request(
            m=16,
            backend="hybrid:model>measure-py:warmup=0,repeat=2?top=4",
            space=WIDE_SPACE,
        )
        model_request = matmul_request(m=16, space=WIDE_SPACE)
        pending = client.submit(request)
        report = pending.result(timeout=300)
        assert report.best.measurement_kind == "measured-py"
        assert report.backend.startswith("hybrid:")
        # a model-priced request for the same kernel is a different job/key
        assert client.submit(model_request).fingerprint != pending.fingerprint

    def test_unavailable_backend_reports_per_job_error(self, thread_server):
        client = TuningClient(thread_server.url)
        request = matmul_request(backend="measure-c:cc=definitely-not-a-compiler-xyz")
        pending = client.submit(request)
        job = pending.job(timeout=300)
        assert job["status"] == "error"
        assert "no C toolchain" in job["error"]

    def test_eight_concurrent_identical_requests_cost_one_tuning_run(self, thread_server):
        """The acceptance criterion: N identical in-flight requests, one compile run."""
        request = matmul_request(m=48)
        expected_compiles = execute_request(request.to_dict())["compiles"]
        assert expected_compiles > 0

        client = TuningClient(thread_server.url)
        start = COMPILE_COUNTER.count
        with ThreadPoolExecutor(max_workers=8) as pool:
            handles = list(pool.map(lambda _: client.submit(request), range(8)))
        reports = [handle.result(timeout=300) for handle in handles]

        # exactly one tuning run's worth of pipeline compiles, not eight
        assert COMPILE_COUNTER.count - start == expected_compiles
        assert all(r.to_dict() == reports[0].to_dict() for r in reports)
        stats = client.cache_stats()["server"]
        assert stats["submitted"] == 8
        assert stats["tuning_runs"] == 1
        # every other submission attached in flight or hit the warm cache
        assert stats["deduplicated"] + stats["cache_hits"] == 7

    def test_repeated_request_is_served_from_cache_with_zero_compiles(self, thread_server):
        client = TuningClient(thread_server.url)
        request = matmul_request(m=24)
        first = client.submit(request)
        first.result(timeout=300)
        start = COMPILE_COUNTER.count
        second = client.submit(request)
        # a warm hit carries its full state inline: no /status round trip,
        # and eviction between submit and poll cannot lose the answer
        assert second._job_state is not None
        job = second.job(timeout=60)
        assert second.cached
        assert job["from_cache"] and job["compiles"] == 0
        assert COMPILE_COUNTER.count == start
        assert job["report"] == first.job()["report"]

    def test_cache_stats_report_backend_identity(self, thread_server):
        """/cache/stats names the persistence backend next to the counters."""
        stats = TuningClient(thread_server.url).cache_stats()["cache"]
        assert stats["backend"] == "memory"  # the fixture server has no path
        for field in ("entries", "bytes", "hits", "misses"):
            assert field in stats
        assert TuningClient(thread_server.url).cache_backend() == "memory"

    def test_server_runs_on_a_sharded_store(self, tmp_path):
        """A dir: store URI threads through server, worker, and /cache/stats."""
        from repro.service.protocol import ordered_cache_stats

        spec = f"dir:{tmp_path / 'cache-dir'}"
        server = TuningServer(
            port=0, executor="thread", max_workers=2, cache=spec
        ).start()
        try:
            client = TuningClient(server.url)
            health = client.healthz()
            assert health["cache_backend"] == "sharded"
            assert health["cache_path"] == spec
            request = matmul_request(m=24)
            client.tune(request, timeout=300)
            cache_stats = client.cache_stats()["cache"]
            assert cache_stats["backend"] == "sharded"
            assert cache_stats["entries"] == 1
            assert cache_stats["shards"] == 1
            # the render helper puts common fields first, gauges after
            rendered = [name for name, _ in ordered_cache_stats(cache_stats)]
            assert rendered[:3] == ["backend", "entries", "bytes"]
            assert "shards" in rendered[3:]
            # the worker persisted through the sharded store: a fresh cache
            # instance (different process in production) starts warm
            assert request.resolve().fingerprint in TuningCache(spec)
        finally:
            server.stop()

    def test_server_on_log_store_counts_worker_entries(self, tmp_path):
        """Regression: /cache/stats must see entries workers appended to the log.

        The worker persists through its *own* store instance; the server's
        index is stale until it resyncs, and the absorbed overlay must count
        toward ``entries`` either way.
        """
        spec = f"log:{tmp_path / 'cache.log'}"
        server = TuningServer(
            port=0, executor="thread", max_workers=2, cache=spec
        ).start()
        try:
            client = TuningClient(server.url)
            client.tune(matmul_request(m=24), timeout=300)
            stats = client.cache_stats()["cache"]
            assert stats["backend"] == "log"
            assert stats["entries"] == 1
            assert stats["segments"] == 1
        finally:
            server.stop()

    def test_evicted_job_is_recovered_by_cached_resubmission(self, thread_server):
        """A finished job evicted before its waiter polled is not a lost report."""
        client = TuningClient(thread_server.url)
        request = matmul_request(m=56)
        pending = client.submit(request)
        report = pending.result(timeout=300)
        # simulate heavy-traffic eviction of the finished record
        service = thread_server.service
        with service._lock:
            del service._jobs[pending.job_id]
        late = PendingTuning(
            client, pending.job_id, pending.fingerprint, "created",
            request=request.to_dict(),
        )
        recovered = late.result(timeout=60)
        assert recovered.to_dict() == report.to_dict()

    def test_keepalive_connection_survives_posts_with_unread_bodies(self, thread_server):
        """Every POST path must drain the body, or HTTP/1.1 pipelining desyncs."""
        import http.client

        host, port = thread_server.address
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            body = json.dumps({"kernel": "matmul"})
            connection.request("POST", "/nope", body=body,
                              headers={"Content-Type": "application/json"})
            assert connection.getresponse().read() and True
            # the same persistent connection must still parse cleanly
            connection.request("GET", "/healthz")
            response = connection.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["status"] == "ok"
        finally:
            connection.close()

    def test_shutdown_endpoint_drains_and_stops(self):
        server = TuningServer(port=0, executor="thread", max_workers=2).start()
        client = TuningClient(server.url)
        pending = client.submit(matmul_request(m=16))
        assert client.shutdown()["status"] == "draining"
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            try:
                client.healthz()
                time.sleep(0.05)
            except ServiceError:
                break
        else:
            pytest.fail("server did not stop after /shutdown")
        # the accepted job was drained, not abandoned
        assert server.service.job(pending.job_id).status == "done"


# -- process pool ------------------------------------------------------------------
class TestProcessPool:
    def test_distinct_requests_run_on_worker_processes_in_parallel(self, tmp_path):
        server = TuningServer(
            port=0, executor="process", max_workers=2, cache=tmp_path / "cache.json"
        ).start()
        try:
            client = TuningClient(server.url)
            start = COMPILE_COUNTER.count
            a = client.submit(matmul_request(m=32))
            b = client.submit(
                TuneRequest(kernel="jacobi1d", sizes={"size": 256}, space=SMALL_SPACE)
            )
            job_a, job_b = a.job(timeout=300), b.job(timeout=300)
            # both tuned on the pool's worker processes...
            assert job_a["status"] == "done" and job_b["status"] == "done"
            assert job_a["compiles"] > 0 and job_b["compiles"] > 0
            # ...so this (server) process never compiled anything: the GIL escaped
            assert COMPILE_COUNTER.count == start
            assert client.cache_stats()["server"]["tuning_runs"] == 2
        finally:
            server.stop()

    def test_identical_concurrent_requests_share_one_worker_run(self, tmp_path):
        """Two clients, same fingerprint, one shared cache file: one tuning run."""
        cache_path = tmp_path / "cache.json"
        server = TuningServer(
            port=0, executor="process", max_workers=2, cache=cache_path
        ).start()
        try:
            client = TuningClient(server.url)
            request = matmul_request(m=40)
            with ThreadPoolExecutor(max_workers=2) as pool:
                handles = list(pool.map(lambda _: client.submit(request), range(2)))
            reports = [handle.result(timeout=300) for handle in handles]
            assert reports[0].to_dict() == reports[1].to_dict()
            stats = client.cache_stats()["server"]
            assert stats["tuning_runs"] == 1
            assert stats["deduplicated"] + stats["cache_hits"] == 1
            # the one run persisted through the shared, file-locked cache
            assert handles[0].fingerprint in TuningCache(cache_path)
        finally:
            server.stop()


# -- tuning history and the fleet dashboard ----------------------------------------
class TestServiceHistory:
    def test_thread_server_appends_exactly_one_record_per_job(self, tmp_path):
        """Thread workers share the server process; the record must still be
        appended exactly once (by ``_finish``, never by the worker itself)."""
        from repro.telemetry.history import HistoryStore

        history_path = tmp_path / "history.jsonl"
        server = TuningServer(
            port=0, executor="thread", max_workers=2, history=history_path
        ).start()
        try:
            client = TuningClient(server.url)
            request = matmul_request(m=16)
            first = client.submit(request)
            first.result(timeout=300)
            second = client.submit(request)  # warm: answered at submit time
            second.result(timeout=60)

            tuned, hit = HistoryStore(history_path).records()
            assert not tuned.cache_hit and tuned.evaluations > 0
            assert tuned.source == "worker" and tuned.job_id == first.job_id
            assert hit.cache_hit and hit.evaluations == 0
            assert hit.source == "server" and hit.job_id == second.job_id
            assert hit.group_key() == tuned.group_key()

            payload = client.history_rollup()
            assert payload["history"]["records"] == 2
            (row,) = payload["rollup"]
            assert row["kernel"] == "matmul" and row["cache_hits"] == 1
        finally:
            server.stop()

    def test_traced_job_history_record_matches_the_span_tree(self, tmp_path):
        """Acceptance: the absorbed record's trace id is the id annotated on
        the job's shipped root span — one correlation key across /status,
        the event log, and the history store."""
        from repro.telemetry.history import HistoryStore

        history_path = tmp_path / "history.jsonl"
        server = TuningServer(
            port=0, executor="thread", max_workers=2, history=history_path
        ).start()
        try:
            client = TuningClient(server.url)
            request = matmul_request(
                m=16,
                backend="hybrid:model>measure-py:warmup=0,repeat=2?top=4",
                space=WIDE_SPACE,
                trace=True,
            )
            job = client.submit(request).job(timeout=300)
            assert job["status"] == "done"
            (record,) = HistoryStore(history_path).records()
            assert record.trace_id is not None
            assert job["trace_id"] == record.trace_id
            assert job["trace"][0]["attrs"]["trace_id"] == record.trace_id
            # hybrid backend: measured provenance and a persisted rho
            assert record.winner_kind == "measured-py"
            assert record.rho is not None
        finally:
            server.stop()

    def test_process_pool_ships_history_across_the_pickle_boundary(self, tmp_path):
        from repro.telemetry.history import HistoryStore

        history_path = tmp_path / "history.jsonl"
        server = TuningServer(
            port=0, executor="process", max_workers=2,
            cache=tmp_path / "cache.json", history=history_path,
        ).start()
        try:
            client = TuningClient(server.url)
            pending = client.submit(matmul_request(m=16))
            pending.result(timeout=300)
            (record,) = HistoryStore(history_path).records()
            assert record.source == "worker"
            assert record.job_id == pending.job_id
            assert record.evaluations > 0
        finally:
            server.stop()

    def test_dashboard_serves_html_with_kernel_names(self, tmp_path):
        server = TuningServer(
            port=0, executor="thread", max_workers=2,
            history=tmp_path / "history.jsonl",
        ).start()
        try:
            client = TuningClient(server.url)
            client.tune(matmul_request(m=16), timeout=300)
            html = client.dashboard()
            assert "<html" in html and "matmul" in html
            assert "repro tuning fleet" in html
            assert client.healthz()["history_path"] == str(tmp_path / "history.jsonl")
        finally:
            server.stop()

    def test_memory_history_when_no_path_configured(self, thread_server):
        client = TuningClient(thread_server.url)
        client.tune(matmul_request(m=16), timeout=300)
        payload = client.history_rollup()
        assert payload["history"]["path"] is None
        assert payload["history"]["records"] >= 1


# -- failed jobs (satellite: error outcomes are fully stamped) ---------------------
class TestFailedJobAccounting:
    def _outcome_totals(self):
        from repro.telemetry import METRICS, parse_prometheus_text

        parsed = parse_prometheus_text(METRICS.render())
        return {
            dict(labels)["outcome"]: value
            for labels, value in parsed.get("repro_jobs_total", {}).items()
        }

    def test_worker_crash_stamps_duration_and_error_metrics(self, monkeypatch):
        from repro.telemetry import METRICS

        def raiser(*args, **kwargs):
            raise RuntimeError("worker exploded")

        monkeypatch.setattr("repro.service.server.execute_request", raiser)
        before_errors = self._outcome_totals().get("error", 0)
        before_count = METRICS.get("repro_job_seconds").count()
        service = TuningService(executor="thread", max_workers=1)
        try:
            job, _ = service.submit(matmul_request(m=16).to_dict())
            service.drain()
            job = service.job(job.id)
            assert job.status == "error"
            assert "worker exploded" in job.error
            # the record is fully stamped: duration, finish time, metrics
            assert job.duration_s is not None and job.duration_s >= 0.0
            assert job.finished_at is not None
            assert job.to_dict()["duration_s"] == job.duration_s
            assert self._outcome_totals().get("error", 0) == before_errors + 1
            assert METRICS.get("repro_job_seconds").count() == before_count + 1
        finally:
            service.drain()

    def test_unknown_kernel_is_rejected_before_a_job_exists(self):
        service = TuningService(executor="thread", max_workers=1)
        try:
            with pytest.raises(ValueError, match="unknown kernel"):
                service.submit({"kernel": "no_such_kernel"})
            assert service.jobs_snapshot() == []
            assert service.stats()["server"]["submitted"] == 0
        finally:
            service.drain()

    def test_unknown_kernel_over_http_is_400_and_leaves_no_job(self, thread_server):
        client = TuningClient(thread_server.url)
        with pytest.raises(ServiceError) as error:
            client.submit({"kernel": "no_such_kernel"})
        assert error.value.status == 400
        assert thread_server.service.jobs_snapshot() == []


# -- graceful shutdown -------------------------------------------------------------
class TestSigtermDrain:
    def test_sigterm_drains_inflight_jobs_before_exit(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.service", "serve",
                "--port", "0", "--workers", "1", "--executor", "thread",
                "--cache", str(cache_path),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            assert "listening on" in banner
            url = banner.split("listening on ")[1].split()[0]
            client = TuningClient(url)
            # a wider space so the job is still in flight when SIGTERM lands
            pending = client.submit(matmul_request(m=64, space=WIDE_SPACE))
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=300)
            assert proc.returncode == 0
            output = proc.stdout.read()
            assert "draining in-flight jobs" in output
            assert "server drained and stopped" in output
            # the in-flight job ran to completion and persisted before exit
            stored = json.loads(cache_path.read_text())
            assert pending.fingerprint in stored["entries"]
        finally:
            if proc.poll() is None:
                proc.kill()


# -- staged-compiler integration ---------------------------------------------------
class TestStagedCompilerThroughService:
    def test_job_reports_per_stage_execution_counts(self, tmp_path):
        """A cold job's record carries the worker's stage counts — analysis
        exactly once (the session-replay promise), tiling once per candidate —
        and a warm hit reports zero stage work, like zero compiles."""
        server = TuningServer(
            port=0, executor="thread", max_workers=1,
            cache=str(tmp_path / "cache.json"),
        ).start()
        try:
            client = TuningClient(server.url)
            cold = client.submit(matmul_request(m=24)).job(timeout=300)
            assert cold["stages"]["analysis"] == 1
            assert cold["stages"]["tiling"] >= 2  # seed compile + candidates
            warm = client.submit(matmul_request(m=24)).job(timeout=300)
            assert warm["from_cache"] is True
            assert warm["stages"] == {}
            assert warm["compiles"] == 0
        finally:
            server.stop()

    def test_cache_stats_expose_the_absorb_bound(self, tmp_path):
        """/cache/stats carries the overlay gauge and its configured bound."""
        service = TuningService(
            cache=str(tmp_path / "cache.json"),
            executor="thread",
            max_workers=1,
            absorb_limit=8,
        )
        try:
            stats = service.stats()["cache"]
            assert stats["absorb_limit"] == 8
            assert stats["absorbed"] == 0
        finally:
            service.drain()

    def test_absorb_limit_applies_to_a_prebuilt_cache(self, tmp_path):
        """Passing an already-open TuningCache must not silently drop the bound."""
        cache = TuningCache(str(tmp_path / "cache.json"))
        service = TuningService(
            cache=cache, executor="thread", max_workers=1, absorb_limit=8
        )
        try:
            assert cache.absorb_limit == 8
            assert service.stats()["cache"]["absorb_limit"] == 8
        finally:
            service.drain()
