"""Tests of ``repro.telemetry.history`` and ``repro.telemetry.events``.

Unit suites exercise the append-only store's crash-safety idiom (truncated
tails, corrupt lines), the windowed regression sentinel, and the event log's
two renderings on private instances; the integration suite runs real
``autotune()`` calls and asserts the wiring promises: one record per
completed request, cache hits recorded as hits, hybrid backends persisting
their model-vs-measured rho, and the record's trace id matching the span
tree the request produced.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.autotune import SpaceOptions, TuningCache, autotune
from repro.autotune.cli import history_main, main as autotune_main
from repro.kernels import build_matmul_program
from repro.telemetry import trace
from repro.telemetry.events import EventLog, events_pass_hook
from repro.telemetry.history import (
    HistoryRecord,
    HistoryStore,
    check_history,
    compare_windows,
    group_records,
    open_history,
    parse_threshold,
    percentile,
    rollup,
    spearman_rho,
    split_window,
)

SMALL_SPACE = SpaceOptions(
    thread_counts=(64,), block_counts=(16,), tile_candidates_per_geometry=2
)
WIDE_SPACE = SpaceOptions(
    thread_counts=(64, 128), block_counts=(16, 32), tile_candidates_per_geometry=2
)
HYBRID = "hybrid:model>measure-py:warmup=0,repeat=2?top=4"


def record(ts: float, winner_ms: float = 1.0, **overrides) -> HistoryRecord:
    payload = {
        "kernel": "matmul",
        "fingerprint": "f" * 8,
        "spec_name": "GPU",
        "backend": "model:",
        "winner_ms": winner_ms,
        "evaluations": 20,
        "ts": ts,
    }
    payload.update(overrides)
    return HistoryRecord(**payload)


# -- the store ---------------------------------------------------------------------
class TestHistoryStore:
    def test_round_trips_through_jsonl(self, tmp_path):
        store = HistoryStore(tmp_path / "history.jsonl")
        original = record(
            ts=100.0,
            winner_ms=0.125,
            cache_hit=False,
            stage_seconds={"tiling": 0.5},
            rho=0.75,
            trace_id="abc123",
            job_id="job-1",
            source="worker",
        )
        store.append(original)
        (loaded,) = HistoryStore(tmp_path / "history.jsonl").records()
        assert loaded == original

    def test_append_terminates_a_crash_truncated_tail(self, tmp_path):
        path = tmp_path / "history.jsonl"
        store = HistoryStore(path)
        store.append(record(ts=1.0))
        # crash mid-write: the final line has no newline and is half a record
        with open(path, "ab") as handle:
            handle.write(b'{"kernel": "mat')
        store.append(record(ts=2.0, winner_ms=2.0))
        records = store.records()
        assert [r.ts for r in records] == [1.0, 2.0]
        assert store._corrupt_lines == 1  # the truncated tail, skipped not fatal

    def test_corrupt_lines_are_skipped_and_counted(self, tmp_path):
        path = tmp_path / "history.jsonl"
        store = HistoryStore(path)
        store.append(record(ts=1.0))
        with open(path, "ab") as handle:
            handle.write(b"not json at all\n")
            handle.write(b'{"no_kernel_field": true}\n')
        store.append(record(ts=2.0))
        assert [r.ts for r in store.records()] == [1.0, 2.0]
        assert store._corrupt_lines == 2
        assert store.stats()["corrupt_lines"] == 2

    def test_memory_store_and_stats(self):
        store = HistoryStore()
        assert store.uri is None
        store.append(record(ts=1.0))
        store.append(record(ts=2.0, kernel="jacobi1d"))
        assert len(store) == 2
        stats = store.stats()
        assert stats["records"] == 2 and stats["groups"] == 2
        assert stats["path"] is None

    def test_open_history_coercions(self, tmp_path):
        assert open_history(None) is None
        store = HistoryStore()
        assert open_history(store) is store
        opened = open_history(tmp_path / "h.jsonl")
        assert isinstance(opened, HistoryStore)
        assert opened.uri == str(tmp_path / "h.jsonl")

    def test_empty_store_is_falsy_but_still_a_store(self, tmp_path):
        """Regression guard for the ``open_history(x) or HistoryStore()``
        trap: an empty file-backed store is falsy (``__len__`` == 0), so
        callers must test ``is None``, never truthiness."""
        store = HistoryStore(tmp_path / "h.jsonl")
        assert not store  # empty -> falsy
        assert open_history(store) is store  # ...and must not be replaced


# -- analysis ----------------------------------------------------------------------
class TestAnalysis:
    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == 2.0
        assert percentile(values, 90) == 4.0
        assert percentile([7.0], 50) == 7.0
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50)

    def test_rollup_groups_and_summarizes(self):
        records = [
            record(ts=1.0, winner_ms=1.0, evaluations=10),
            record(ts=2.0, winner_ms=3.0, evaluations=20),
            record(ts=3.0, winner_ms=2.0, cache_hit=True, evaluations=0),
            record(ts=4.0, kernel="jacobi1d", winner_ms=5.0, rho=0.5),
        ]
        rows = rollup(records)
        assert [row["kernel"] for row in rows] == ["jacobi1d", "matmul"]
        matmul = rows[1]
        assert matmul["requests"] == 3 and matmul["cache_hits"] == 1
        assert matmul["best_ms"] == 1.0
        # cache hits do not dilute the mean evaluation count
        assert matmul["mean_evaluations"] == pytest.approx(15.0)
        assert matmul["mean_rho"] is None
        assert rows[0]["mean_rho"] == pytest.approx(0.5)

    def test_split_and_compare_windows(self):
        group = [record(ts=float(i), winner_ms=10.0 - i) for i in range(5)]
        current, prior = split_window(group, 2)
        assert [r.ts for r in current] == [3.0, 4.0]
        assert len(prior) == 3
        with pytest.raises(ValueError, match="positive"):
            split_window(group, 0)

        (row,) = compare_windows(group, window=2)
        assert row["current_best_ms"] == 6.0  # the improvement is a negative delta
        assert row["prior_best_ms"] == 8.0
        assert row["delta_pct"] == pytest.approx(-25.0)

    def test_compare_reports_new_groups_without_prior(self):
        (row,) = compare_windows([record(ts=1.0)], window=1)
        assert row["prior"] == 0
        assert row["delta_pct"] is None and row["prior_best_ms"] is None

    def test_parse_threshold(self):
        assert parse_threshold("5%") == pytest.approx(0.05)
        assert parse_threshold("0.2") == pytest.approx(0.2)
        assert parse_threshold(0.1) == pytest.approx(0.1)
        with pytest.raises(ValueError, match="threshold"):
            parse_threshold("fast")
        with pytest.raises(ValueError, match="negative"):
            parse_threshold("-5%")

    def test_check_flags_a_synthetic_2x_winner_regression(self):
        """The acceptance scenario: a 2x slower winner fails the gate that the
        pre-regression window passed."""
        steady = [record(ts=float(i), winner_ms=1.0) for i in range(3)]
        failures, rows = check_history(steady, window=1, threshold="5%")
        assert failures == [] and len(rows) == 1

        regressed = steady + [record(ts=10.0, winner_ms=2.0)]
        failures, _ = check_history(regressed, window=1, threshold="5%")
        (failure,) = failures
        assert failure["delta_pct"] == pytest.approx(100.0)
        assert any("winner time regressed" in reason for reason in failure["reasons"])

    def test_check_flags_evaluation_count_growth(self):
        records = [
            record(ts=1.0, evaluations=10),
            record(ts=2.0, winner_ms=1.0, evaluations=40),
        ]
        failures, _ = check_history(records, window=1, threshold="10%")
        (failure,) = failures
        assert any("evaluation count grew" in reason for reason in failure["reasons"])

    def test_check_tolerates_regressions_within_threshold(self):
        records = [record(ts=1.0, winner_ms=1.0), record(ts=2.0, winner_ms=1.04)]
        failures, rows = check_history(records, window=1, threshold="5%")
        assert failures == []
        assert rows[0]["delta_pct"] == pytest.approx(4.0)

    def test_spearman_helper_matches_known_values(self):
        assert spearman_rho([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)
        assert spearman_rho([1, 2, 3], [30, 20, 10]) == pytest.approx(-1.0)
        assert spearman_rho([1, 1, 2], [1, 1, 2]) == pytest.approx(1.0)
        with pytest.raises(ValueError, match="at least 2"):
            spearman_rho([1.0], [2.0])


# -- autotune integration ----------------------------------------------------------
class TestAutotuneHistory:
    def test_cold_and_warm_requests_append_records(self, tmp_path):
        history = tmp_path / "history.jsonl"
        cache = TuningCache(tmp_path / "cache.json")
        program = build_matmul_program(16, 16, 16)
        cold = autotune(
            program, space_options=SMALL_SPACE, cache=cache, history=history, seed=3
        )
        warm = autotune(
            program, space_options=SMALL_SPACE, cache=cache, history=history, seed=3
        )
        assert warm.from_cache

        tuned, hit = HistoryStore(history).records()
        assert tuned.kernel == "matmul" and not tuned.cache_hit
        assert tuned.fingerprint == cold.fingerprint
        assert tuned.winner_ms == pytest.approx(cold.best.time_ms)
        assert tuned.evaluations == len(cold.results) > 0
        assert tuned.baseline_ms == pytest.approx(cold.baseline.time_ms)
        assert tuned.wall_s > 0
        assert "analysis" in tuned.stage_seconds  # per-stage seconds persisted
        assert tuned.source == "autotune"
        assert tuned.rho is None  # model backend: no measured pairs

        assert hit.cache_hit and hit.evaluations == 0
        assert hit.winner_ms == pytest.approx(cold.best.time_ms)
        assert hit.group_key() == tuned.group_key()

    def test_report_carries_the_record_even_without_a_store(self):
        report = autotune(
            build_matmul_program(16, 16, 16), space_options=SMALL_SPACE, seed=5
        )
        record = getattr(report, "history_record", None)
        assert record is not None
        assert record.fingerprint == report.fingerprint

    def test_hybrid_backend_persists_rho(self, tmp_path):
        store = HistoryStore()
        autotune(
            build_matmul_program(16, 16, 16),
            space_options=WIDE_SPACE,
            backend=HYBRID,
            history=store,
            seed=7,
        )
        (tuned,) = store.records()
        assert tuned.backend.startswith("hybrid:")
        assert tuned.winner_kind == "measured-py"
        assert tuned.rho is not None and -1.0 <= tuned.rho <= 1.0

    def test_traced_request_records_the_collector_trace_id(self):
        store = HistoryStore()
        with trace.capture_trace() as collector:
            autotune(
                build_matmul_program(16, 16, 16),
                space_options=SMALL_SPACE,
                history=store,
                seed=9,
            )
        (tuned,) = store.records()
        assert tuned.trace_id == collector.trace_id
        (root,) = collector.roots
        assert root.attrs["trace_id"] == tuned.trace_id

    def test_untraced_request_has_no_trace_id(self):
        store = HistoryStore()
        autotune(
            build_matmul_program(16, 16, 16),
            space_options=SMALL_SPACE,
            history=store,
            seed=11,
        )
        (tuned,) = store.records()
        assert tuned.trace_id is None


# -- the history CLI (the CI gate) -------------------------------------------------
class TestHistoryCLI:
    def write(self, path, records):
        store = HistoryStore(path)
        for item in records:
            store.append(item)
        return str(path)

    def test_list_and_show_render(self, tmp_path, capsys):
        path = self.write(
            tmp_path / "h.jsonl",
            [record(ts=1.0, rho=0.5, trace_id="t1", job_id="j1"), record(ts=2.0)],
        )
        assert history_main(["list", path]) == 0
        out = capsys.readouterr().out
        assert "matmul" in out and "2 records" in out
        assert history_main(["show", path, "--last", "1"]) == 0
        out = capsys.readouterr().out
        assert "winner=" in out and "trace=" not in out  # only the last record

    def test_compare_and_check_exit_codes(self, tmp_path, capsys):
        steady = self.write(
            tmp_path / "ok.jsonl",
            [record(ts=float(i), winner_ms=1.0) for i in range(3)],
        )
        assert history_main(["compare", steady]) == 0
        assert "window=1" in capsys.readouterr().out
        assert history_main(["check", steady, "--threshold", "5%"]) == 0
        assert "history check passed" in capsys.readouterr().out

        regressed = self.write(tmp_path / "bad.jsonl", [record(ts=10.0, winner_ms=2.0)])
        # same file, new record: the 2x regression flips the gate
        HistoryStore(steady).append(record(ts=10.0, winner_ms=2.0))
        assert history_main(["check", steady, "--threshold", "5%"]) == 1
        captured = capsys.readouterr()
        assert "history check FAILED" in captured.err
        assert "winner time regressed" in captured.err
        # a lone group with no prior window is informational, not a failure
        assert history_main(["check", regressed]) == 0

    def test_empty_store_exit_codes(self, tmp_path, capsys):
        missing = str(tmp_path / "none.jsonl")
        assert history_main(["list", missing]) == 0
        assert history_main(["show", missing]) == 0
        assert history_main(["check", missing]) == 2
        assert history_main(["compare", missing]) == 2
        assert "no records" in capsys.readouterr().err

    def test_bad_threshold_is_a_usage_error(self, tmp_path, capsys):
        path = self.write(tmp_path / "h.jsonl", [record(ts=1.0)])
        assert history_main(["check", path, "--threshold", "fast"]) == 2
        assert "threshold" in capsys.readouterr().err

    def test_corrupt_lines_warn_but_do_not_crash(self, tmp_path, capsys):
        path = tmp_path / "h.jsonl"
        self.write(path, [record(ts=1.0)])
        with open(path, "ab") as handle:
            handle.write(b"garbage\n")
        assert history_main(["list", str(path)]) == 0
        assert "corrupt history line" in capsys.readouterr().err

    def test_main_dispatches_the_history_subcommand(self, tmp_path, capsys):
        path = self.write(tmp_path / "h.jsonl", [record(ts=1.0)])
        assert autotune_main(["history", "list", path]) == 0
        assert "matmul" in capsys.readouterr().out


# -- the event log -----------------------------------------------------------------
class TestEventLog:
    def test_json_mode_emits_parseable_sorted_lines(self):
        stream = io.StringIO()
        log = EventLog(json_mode=True, level="info", stream=stream)
        log.emit("job.submit", job="j1", fingerprint="abc")
        (line,) = stream.getvalue().splitlines()
        payload = json.loads(line)
        assert payload["event"] == "job.submit"
        assert payload["job"] == "j1" and payload["level"] == "info"
        # the grep contract: default separators, sorted keys
        assert '"event": "job.submit"' in line

    def test_human_mode_puts_msg_before_fields(self):
        stream = io.StringIO()
        log = EventLog(level="info", stream=stream)
        log.emit("server.listening", msg="listening on http://x:1", port=1)
        line = stream.getvalue()
        assert "INFO server.listening listening on http://x:1 port=1" in line

    def test_level_threshold_filters(self):
        stream = io.StringIO()
        log = EventLog(level="warning", stream=stream)
        assert not log.enabled("debug") and not log.enabled("info")
        assert log.enabled("error")
        log.emit("job.start", level="info", job="j1")
        log.emit("job.error", level="error", job="j1")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 1 and "job.error" in lines[0]

    def test_configure_rejects_unknown_level(self):
        with pytest.raises(ValueError, match="unknown log level"):
            EventLog().configure(level="loud")

    def test_unserializable_fields_degrade_instead_of_crashing(self):
        stream = io.StringIO()
        log = EventLog(json_mode=True, level="info", stream=stream)
        log.emit("cache.put", payload={1, 2})  # a set: json.dumps default=str
        assert json.loads(stream.getvalue())["event"] == "cache.put"

    def test_broken_stream_is_swallowed(self):
        closed = io.StringIO()
        closed.close()
        log = EventLog(level="info", stream=closed)
        log.emit("job.done", job="j1")  # must not raise

    def test_events_pass_hook_narrates_at_debug(self):
        stream = io.StringIO()
        log = EventLog(level="debug", stream=stream)
        from repro.telemetry import events

        original = events.EVENTS
        events.EVENTS = log
        try:
            events_pass_hook("tiling", artifact=None, elapsed_s=0.25)
        finally:
            events.EVENTS = original
        assert "stage.complete" in stream.getvalue()
        assert "stage=tiling" in stream.getvalue()
