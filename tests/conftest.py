"""Shared test fixtures.

The ``measure-c`` compile cache defaults to ``~/.cache/repro/measure-c``;
tests must never write there (or warm-hit binaries a previous run left
behind), so every test gets a private cache root via the
``REPRO_COMPILE_CACHE`` environment override.
"""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True)
def _hermetic_compile_cache(tmp_path_factory, monkeypatch):
    root = tmp_path_factory.mktemp("compile-cache")
    monkeypatch.setenv("REPRO_COMPILE_CACHE", str(root))
