"""Unit tests for constraints, Fourier–Motzkin elimination and polyhedra."""

import pytest

from repro.polyhedral import fourier_motzkin as fm
from repro.polyhedral.affine import AffineExpr
from repro.polyhedral.constraints import Constraint
from repro.polyhedral.polyhedron import Polyhedron

i, j, N = AffineExpr.var("i"), AffineExpr.var("j"), AffineExpr.var("N")


class TestConstraint:
    def test_normalisation_gcd(self):
        c = Constraint.greater_equal(4 * i, 8)
        assert c.coefficient("i") == 1 and c.expr.constant == -2

    def test_equality_canonical_sign(self):
        a = Constraint.equals(i - j)
        b = Constraint.equals(j - i)
        assert a == b

    def test_trivially_true_false(self):
        assert Constraint.greater_equal(AffineExpr.const(3)).is_trivially_true()
        assert Constraint.greater_equal(AffineExpr.const(-1)).is_trivially_false()
        assert Constraint.equals(AffineExpr.const(1)).is_trivially_false()

    def test_satisfied_by(self):
        c = Constraint.less_equal(i, 5)
        assert c.satisfied_by({"i": 5}) and not c.satisfied_by({"i": 6})

    def test_negate_integer_semantics(self):
        c = Constraint.greater_equal(i, 3)          # i >= 3
        negated = c.negate()                        # i <= 2
        assert negated.satisfied_by({"i": 2}) and not negated.satisfied_by({"i": 3})

    def test_negate_equality_raises(self):
        with pytest.raises(ValueError):
            Constraint.equals(i, 3).negate()

    def test_bounds_pair(self):
        low, high = Constraint.bounds("i", 0, N - 1)
        assert low.satisfied_by({"i": 0, "N": 4}) and high.satisfied_by({"i": 3, "N": 4})


class TestFourierMotzkin:
    def test_eliminate_variable_simple(self):
        system = [Constraint.greater_equal(i, 1), Constraint.less_equal(i, j)]
        result = fm.eliminate(system, ["i"])
        # 1 <= i <= j implies j >= 1
        assert any(c.satisfied_by({"j": 1}) and not c.satisfied_by({"j": 0}) for c in result)

    def test_eliminate_through_equality(self):
        system = [Constraint.equals(i, j + 2), Constraint.less_equal(i, 5)]
        result = fm.eliminate(system, ["i"])
        assert any(not c.satisfied_by({"j": 4}) for c in result)  # j <= 3

    def test_infeasible_detected(self):
        system = [Constraint.greater_equal(i, 5), Constraint.less_equal(i, 3)]
        assert fm.is_rationally_infeasible(system)

    def test_feasible(self):
        assert not fm.is_rationally_infeasible([Constraint.greater_equal(i, 5)])

    def test_remove_redundant_keeps_tightest(self):
        loose = Constraint.less_equal(i, 10)
        tight = Constraint.less_equal(i, 5)
        kept = fm.remove_redundant([loose, tight])
        assert kept == [tight]

    def test_bounds_for_variable(self):
        system = [Constraint.greater_equal(i, 2), Constraint.less_equal(i, N)]
        lowers, uppers = fm.bounds_for_variable(system, "i", ["N"])
        assert lowers and uppers


class TestPolyhedron:
    def test_duplicate_dims_rejected(self):
        with pytest.raises(ValueError):
            Polyhedron(["i", "i"])

    def test_unknown_name_in_constraint_rejected(self):
        with pytest.raises(ValueError):
            Polyhedron(["i"], [Constraint.greater_equal(j, 0)])

    def test_from_bounds_contains(self):
        box = Polyhedron.from_bounds({"i": (0, 3), "j": (1, 2)})
        assert box.contains({"i": 0, "j": 2})
        assert not box.contains({"i": 4, "j": 2})

    def test_empty_and_universe(self):
        assert Polyhedron.empty(["i"]).is_empty()
        assert not Polyhedron.universe(["i"]).is_empty()

    def test_intersection_emptiness(self):
        a = Polyhedron.from_bounds({"i": (0, 3)})
        b = Polyhedron.from_bounds({"i": (5, 8)})
        assert a.intersect(b).is_empty()
        assert not a.intersects(b)

    def test_intersect_dim_mismatch(self):
        with pytest.raises(ValueError):
            Polyhedron.universe(["i"]).intersect(Polyhedron.universe(["j"]))

    def test_project_out(self):
        box = Polyhedron.from_bounds({"i": (0, 3), "j": (0, 5)})
        projected = box.project_out(["j"])
        assert projected.dims == ("i",)
        assert projected.contains({"i": 2}) and not projected.contains({"i": 4})

    def test_project_onto_order(self):
        box = Polyhedron.from_bounds({"i": (0, 3), "j": (0, 5)})
        assert box.project_onto(["j"]).dims == ("j",)

    def test_bounding_box(self):
        box = Polyhedron.from_bounds({"i": (0, 3), "j": (2, 5)})
        assert box.bounding_box() == {"i": (0, 3), "j": (2, 5)}

    def test_bounding_box_unbounded_raises(self):
        half = Polyhedron(["i"], [Constraint.greater_equal(i, 0)])
        with pytest.raises(ValueError):
            half.bounding_box()

    def test_specialize_parameters(self):
        poly = Polyhedron(["i"], list(Constraint.bounds("i", 0, N - 1)), params=["N"])
        concrete = poly.specialize({"N": 4})
        assert concrete.params == ()
        assert concrete.bounding_box() == {"i": (0, 3)}

    def test_rename_dims(self):
        poly = Polyhedron.from_bounds({"i": (0, 3)}).rename_dims({"i": "x"})
        assert poly.dims == ("x",) and poly.contains({"x": 1})

    def test_subset_and_equality(self):
        small = Polyhedron.from_bounds({"i": (1, 2)})
        large = Polyhedron.from_bounds({"i": (0, 3)})
        assert small.is_subset_of(large)
        assert not large.is_subset_of(small)
        assert small.equals(Polyhedron.from_bounds({"i": (1, 2)}))

    def test_sample_integer_point(self):
        poly = Polyhedron.from_bounds({"i": (2, 2), "j": (4, 6)})
        point = poly.sample_integer_point()
        assert point is not None and point["i"] == 2 and 4 <= point["j"] <= 6

    def test_sample_empty_returns_none(self):
        assert Polyhedron.empty(["i"]).sample_integer_point() is None

    def test_has_integer_point_with_params(self):
        poly = Polyhedron(["i"], list(Constraint.bounds("i", 0, N)), params=["N"])
        assert poly.has_integer_point({"N": 0})

    def test_count_points(self):
        tri = Polyhedron(
            ["i", "j"],
            list(Constraint.bounds("i", 0, 3)) + [Constraint.less_equal(j, i), Constraint.greater_equal(j, 0)],
        )
        # sum_{i=0..3} (i+1) = 10
        assert tri.count_points() == 10

    def test_integer_points_order(self):
        box = Polyhedron.from_bounds({"i": (0, 1), "j": (0, 1)})
        points = list(box.integer_points())
        assert points[0] == {"i": 0, "j": 0} and len(points) == 4
