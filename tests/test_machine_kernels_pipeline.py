"""Tests for the machine models, the evaluation kernels and the end-to-end
mapping pipeline (integration)."""

import numpy as np
import pytest

from repro import (
    GEFORCE_8800_GTX,
    MappingOptions,
    MappingPipeline,
    run_program,
    simulate_cpu,
    simulate_gpu,
)
from repro.kernels import (
    JACOBI_PROBLEM_SIZES,
    ME_PROBLEM_SIZES,
    JacobiWorkloadModel,
    MEWorkloadModel,
    build_conv2d_program,
    build_jacobi_sweep_program,
    build_jacobi_time_program,
    build_matmul_program,
    build_me_program,
)
from repro.machine import (
    BlockWorkload,
    CPUPerformanceModel,
    CPUWorkload,
    GPUPerformanceModel,
    KernelLaunch,
    MemoryModel,
)
from repro.tiling.mapping import LaunchGeometry


class TestGPUModel:
    def _workload(self, use_scratchpad):
        if use_scratchpad:
            return BlockWorkload(
                compute_instances=100_000,
                global_accesses_per_instance=0.0,
                shared_accesses_per_instance=4.0,
                copy_in_elements=5_000,
                copy_out_elements=1_000,
                copy_occurrences=20,
            )
        return BlockWorkload(
            compute_instances=100_000,
            global_accesses_per_instance=4.0,
            shared_accesses_per_instance=0.0,
        )

    def test_scratchpad_faster_than_dram(self):
        model = GPUPerformanceModel()
        geometry = LaunchGeometry(32, 256, shared_memory_per_block_bytes=4096)
        plain = LaunchGeometry(32, 256)
        fast = model.execution_time_ms(KernelLaunch(self._workload(True), geometry))
        slow = model.execution_time_ms(KernelLaunch(self._workload(False), plain))
        assert slow / fast > 4

    def test_occupancy_limits_resident_blocks(self):
        """Scratchpad usage bounds how many blocks are resident (the paper's X/M),
        and never makes a launch faster; throughput itself is bounded by the
        multiprocessor count."""
        model = GPUPerformanceModel()
        workload = self._workload(True)
        small = LaunchGeometry(128, 64, shared_memory_per_block_bytes=1024)
        large = LaunchGeometry(128, 64, shared_memory_per_block_bytes=9000)
        assert model.concurrent_blocks(small) > model.concurrent_blocks(large)
        assert model.concurrent_blocks(large) == GEFORCE_8800_GTX.multiprocessors
        assert model.execution_time_ms(KernelLaunch(workload, large)) >= model.execution_time_ms(
            KernelLaunch(workload, small)
        )

    def test_block_exceeding_scratchpad_rejected(self):
        model = GPUPerformanceModel()
        geometry = LaunchGeometry(8, 64, shared_memory_per_block_bytes=32 * 1024)
        with pytest.raises(ValueError):
            model.concurrent_blocks(geometry)

    def test_global_sync_rounds_add_cost(self):
        model = GPUPerformanceModel()
        geometry = LaunchGeometry(16, 64, shared_memory_per_block_bytes=1024)
        one = model.execution_time_ms(KernelLaunch(self._workload(True), geometry, 1))
        many = model.execution_time_ms(KernelLaunch(self._workload(True), geometry, 128))
        assert many > one

    def test_breakdown_keys(self):
        model = GPUPerformanceModel()
        launch = KernelLaunch(self._workload(True), LaunchGeometry(4, 64, shared_memory_per_block_bytes=512))
        breakdown = model.breakdown(launch)
        assert set(breakdown) == {"compute", "global", "shared", "dma", "sync"}

    def test_memory_limit_per_block(self):
        memory = MemoryModel(GEFORCE_8800_GTX)
        assert memory.memory_limit_per_block(1) == 16 * 1024
        assert memory.memory_limit_per_block(8) == 2 * 1024
        assert memory.scratchpad_fits(2 * 1024, 8)


class TestCPUModel:
    def test_cache_resident_faster_than_streaming(self):
        model = CPUPerformanceModel()
        small = CPUWorkload(1e6, 4.0, working_set_bytes=1 << 20)
        large = CPUWorkload(1e6, 4.0, working_set_bytes=1 << 26)
        assert model.execution_time_ms(small) < model.execution_time_ms(large)

    def test_report_wrapper(self):
        report = simulate_cpu("cpu", CPUWorkload(1e5, 2.0, 1 << 18))
        assert report.time_ms > 0 and "compute" in report.breakdown


class TestKernels:
    def test_me_program_small_semantics(self):
        program = build_me_program(4, 4, window=2)
        cur = np.arange(36, dtype=float).reshape(6, 6)
        ref = np.ones((6, 6))
        ctx = run_program(program, inputs={"Cur": cur, "Ref": ref})
        expected = sum(
            abs(cur[0 + k, 0 + l] - 1.0) for k in range(2) for l in range(2)
        )
        assert ctx.data("SAD")[0, 0] == pytest.approx(expected)

    def test_me_problem_size_table(self):
        assert ME_PROBLEM_SIZES["64M"] == (8192, 8192)
        for height, width in ME_PROBLEM_SIZES.values():
            assert height * width > 0

    def test_me_workload_scratchpad_removes_global_traffic(self):
        model = MEWorkloadModel(1024, 1024)
        tile = (32, 16, 16, 16)
        with_spm = model.block_workload(tile, True)
        without = model.block_workload(tile, False)
        assert with_spm.global_accesses_per_instance == 0
        assert without.global_accesses_per_instance == 4
        assert with_spm.copy_in_elements > 0

    def test_me_footprint_fits_8800gtx_for_paper_tile(self):
        model = MEWorkloadModel(4096, 4096)
        assert model.subtile_footprint_bytes((32, 16, 16, 16)) <= 16 * 1024

    def test_jacobi_program_semantics(self):
        program = build_jacobi_time_program(8, 3)
        init = np.zeros((4, 10))
        init[0] = np.arange(10)
        ctx = run_program(program, inputs={"A": init})
        data = ctx.data("A")
        expected_step1 = (init[0, 0] + init[0, 1] + init[0, 2]) / 3
        assert data[1, 1] == pytest.approx(expected_step1)

    def test_jacobi_workload_sync_rounds(self):
        model = JacobiWorkloadModel(size=64 * 1024, time_steps=4096, time_tile=32)
        assert model.global_sync_rounds(True) == 128
        assert model.global_sync_rounds(False) == 4096

    def test_jacobi_footprint_scales_with_tiles(self):
        small = JacobiWorkloadModel(size=64 * 1024, space_tile=128, time_tile=16)
        large = JacobiWorkloadModel(size=64 * 1024, space_tile=512, time_tile=64)
        assert large.shared_bytes_per_block() > small.shared_bytes_per_block()

    def test_jacobi_problem_size_table(self):
        assert JACOBI_PROBLEM_SIZES["512k"] == 512 * 1024

    def test_matmul_and_conv_programs_build(self):
        assert build_matmul_program(4, 4, 4).statement_list
        assert build_conv2d_program(4, 4, 3).statement_list
        with pytest.raises(ValueError):
            build_matmul_program(0, 1, 1)


class TestPipelineIntegration:
    @pytest.fixture(scope="class")
    def mapped_me(self):
        program = build_me_program(16, 16, window=4)
        options = MappingOptions(
            num_blocks=4, threads_per_block=16, tile_sizes={"i": 8, "j": 8, "k": 4, "l": 4}
        )
        return program, MappingPipeline(options=options).compile(program)

    def test_mapped_program_preserves_semantics(self, mapped_me):
        program, mapped = mapped_me
        rng = np.random.default_rng(3)
        cur, ref = rng.random((20, 20)), rng.random((20, 20))
        reference = run_program(program, inputs={"Cur": cur, "Ref": ref})
        transformed = run_program(mapped.program, inputs={"Cur": cur, "Ref": ref})
        assert np.allclose(reference.data("SAD"), transformed.data("SAD"))

    def test_mapped_kernel_uses_scratchpad(self, mapped_me):
        _, mapped = mapped_me
        assert mapped.uses_scratchpad
        assert mapped.workload.global_accesses_per_instance == 0
        assert mapped.workload.shared_accesses_per_instance == 4
        assert mapped.geometry.shared_memory_per_block_bytes > 0

    def test_pipeline_matches_closed_form_footprint(self, mapped_me):
        _, mapped = mapped_me
        model = MEWorkloadModel(16, 16, window=4, num_blocks=4, threads_per_block=16)
        assert mapped.geometry.shared_memory_per_block_bytes == model.subtile_footprint_bytes(
            (8, 8, 4, 4)
        )

    def test_no_scratchpad_configuration(self):
        program = build_me_program(8, 8, window=2)
        options = MappingOptions(
            num_blocks=2, threads_per_block=8, use_scratchpad=False,
            tile_sizes={"i": 4, "j": 4, "k": 2, "l": 2},
        )
        mapped = MappingPipeline(options=options).compile(program)
        assert not mapped.uses_scratchpad
        assert mapped.workload.global_accesses_per_instance == 4

    def test_simulated_ordering_scratchpad_vs_dram_vs_cpu(self):
        model = MEWorkloadModel(512, 512, num_blocks=32, threads_per_block=256)
        tile = (32, 16, 16, 16)
        spm = simulate_gpu("spm", model.block_workload(tile, True), model.geometry(tile, True))
        dram = simulate_gpu("dram", model.block_workload(tile, False), model.geometry(tile, False))
        cpu = simulate_cpu("cpu", model.cpu_workload())
        assert spm.time_ms < dram.time_ms < cpu.time_ms
        assert 4 <= dram.time_ms / spm.time_ms <= 16
        assert cpu.time_ms / spm.time_ms >= 100
