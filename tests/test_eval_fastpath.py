"""Tests of the ISSUE-8 evaluation fast path.

Four layers, each pinned here:

* the on-disk **compile cache** behind ``measure-c:`` (hit/miss/evict
  semantics, URI options, one ``cc`` invocation per shared artifact even
  across forked worker processes);
* the cross-request **artifact cache** (validated adoption keyed on
  ``base_fingerprint``; a repeat ``autotune`` request runs analysis zero
  times);
* the per-request **measurement memo** plus the ``workers=`` parallel
  measurement mode (timed sections serialize under ``TIMED_SECTION_LOCK``,
  so ``workers`` never fingerprints);
* the **vectorised lower-py** terminal pass (numpy-backed source that is
  behaviourally identical to the scalar artifact, with a scalar fallback
  when numpy is absent).

Plus the satellite fixes: the hybrid's finalize re-measuring an
already-measured config memo-hits instead of paying another run, and a
``measure-c`` compile failure becomes an infeasible measurement carrying the
truncated compiler stderr.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import pickle
import warnings

import numpy as np
import pytest

from repro.codegen import emit_python_source, emit_python_source_vectorized
from repro.codegen.compile_cache import (
    COMPILE_CACHE_TOTAL,
    CompileCache,
    binary_key,
    default_cache_root,
    open_compile_cache,
)
from repro.codegen.toolchain import c_toolchain_skip_reason, find_c_compiler
from repro.compiler import (
    DEFAULT_PASSES,
    CompilationSession,
    counting_stage_runs,
)
from repro.compiler.artifact_cache import ARTIFACT_CACHE_TOTAL, ArtifactCache
from repro.kernels.registry import get_kernel
from repro.machine.spec import GEFORCE_8800_GTX
from repro.runtime.interpreter import run_program
from repro.autotune import ConfigurationEvaluator, SpaceOptions, autotune
from repro.autotune.backends import (
    MeasuredCBackend,
    MeasuredPythonBackend,
    parse_backend_uri,
)
from repro.autotune.backends.base import MEASURE_MEMO_TOTAL
from repro.autotune.session import MEASURE_PARALLELISM
from repro.autotune.space import Configuration

requires_c_toolchain = pytest.mark.skipif(
    c_toolchain_skip_reason() is not None,
    reason=c_toolchain_skip_reason() or "C toolchain present",
)

TINY_SPACE = SpaceOptions(
    thread_counts=(64,), block_counts=(16,), tile_candidates_per_geometry=2
)
#: a single-candidate space, for subprocess tunes that must stay fast
ONE_SPACE = SpaceOptions(
    thread_counts=(16,),
    block_counts=(4,),
    scratchpad_choices=(False,),
    tile_candidates_per_geometry=1,
)
FAST_PY = "measure-py:warmup=0,repeat=2"


def matmul(n: int = 8):
    return get_kernel("matmul").build(m=n, n=n, k=n)


def prepared_backend(backend, program):
    """A (backend, session, valid configuration) triple ready to measure."""
    session = CompilationSession(program)
    backend.prepare(session, GEFORCE_8800_GTX)
    mapped = session.compile()
    config = Configuration.from_options(session.options, mapped.tile_sizes)
    return session, config


# -- the compile cache (unit) ------------------------------------------------------
class TestCompileCache:
    def test_miss_compiles_then_hit_reuses(self, tmp_path):
        cache = CompileCache(tmp_path / "bin", capacity=8)
        compiles = []

        def build(target):
            compiles.append(target)
            target.write_text("#!/bin/sh\n")

        hits = COMPILE_CACHE_TOTAL.value(outcome="hit")
        misses = COMPILE_CACHE_TOTAL.value(outcome="miss")
        key = binary_key("int main(){}", "cc", "-O2")
        first, outcome1 = cache.get_or_compile(key, build)
        second, outcome2 = cache.get_or_compile(key, build)
        assert (outcome1, outcome2) == ("miss", "hit")
        assert first == second and first.read_text() == "#!/bin/sh\n"
        assert len(compiles) == 1
        assert COMPILE_CACHE_TOTAL.value(outcome="miss") == misses + 1
        assert COMPILE_CACHE_TOTAL.value(outcome="hit") == hits + 1

    def test_eviction_drops_least_recently_used(self, tmp_path):
        cache = CompileCache(tmp_path / "bin", capacity=2)
        keys = [binary_key(f"src{i}", "cc", "-O2") for i in range(3)]
        paths = []
        for index, key in enumerate(keys):
            path, _ = cache.get_or_compile(key, lambda t: t.write_text("x"))
            # explicit, strictly increasing recency (filesystem mtime
            # granularity is too coarse to rely on)
            os.utime(path, (index, index))
            paths.append(path)
        assert not paths[0].exists()  # the oldest fell out
        assert paths[1].exists() and paths[2].exists()
        assert len(cache.entries()) == 2

    def test_binary_key_separates_source_compiler_and_flags(self):
        base = binary_key("src", "cc", "-O2")
        assert binary_key("src2", "cc", "-O2") != base
        assert binary_key("src", "gcc", "-O2") != base
        assert binary_key("src", "cc", "-O3") != base
        assert binary_key("src", "cc", "-O2") == base

    def test_open_compile_cache_off_path_and_env_default(self, tmp_path, monkeypatch):
        assert open_compile_cache("off") is None
        assert open_compile_cache(" OFF ") is None
        relocated = open_compile_cache(str(tmp_path / "elsewhere"))
        assert relocated.root == tmp_path / "elsewhere"
        monkeypatch.setenv("REPRO_COMPILE_CACHE", str(tmp_path / "env-root"))
        assert default_cache_root() == tmp_path / "env-root"
        assert open_compile_cache(None).root == tmp_path / "env-root"

    def test_rejects_nonpositive_capacity(self, tmp_path):
        with pytest.raises(ValueError, match="capacity must be positive"):
            CompileCache(tmp_path, capacity=0)

    def test_failed_compile_installs_nothing(self, tmp_path):
        cache = CompileCache(tmp_path / "bin", capacity=8)
        key = binary_key("broken", "cc", "-O2")

        def explode(target):
            raise RuntimeError("cc said no")

        with pytest.raises(RuntimeError, match="cc said no"):
            cache.get_or_compile(key, explode)
        assert cache.entries() == []
        # the key stays compilable once the failure is fixed
        _, outcome = cache.get_or_compile(key, lambda t: t.write_text("x"))
        assert outcome == "miss"


# -- the measurement memo ----------------------------------------------------------
class TestMeasurementMemo:
    def test_identical_configs_within_a_request_measure_once(self):
        backend = MeasuredPythonBackend(warmup=0, repeat=2)
        _, config = prepared_backend(backend, matmul(8))
        hits = MEASURE_MEMO_TOTAL.value(outcome="hit")
        with counting_stage_runs() as runs:
            first = backend.measure(config)
            second = backend.measure(config)
        assert runs.counts.get("lower-py-vec", 0) == 1  # one replay, one run
        assert MEASURE_MEMO_TOTAL.value(outcome="hit") == hits + 1
        assert second.time_ms == first.time_ms
        # hits are copies: callers stamping metadata never corrupt the memo
        second.metadata["model_time_ms"] = 123.0
        third = backend.measure(config)
        assert "model_time_ms" not in third.metadata

    def test_prepare_resets_the_memo(self):
        backend = MeasuredPythonBackend(warmup=0, repeat=2)
        session, config = prepared_backend(backend, matmul(8))
        backend.measure(config)
        backend.prepare(session, GEFORCE_8800_GTX)  # a new request
        misses = MEASURE_MEMO_TOTAL.value(outcome="miss")
        backend.measure(config)
        assert MEASURE_MEMO_TOTAL.value(outcome="miss") == misses + 1

    def test_memo_does_not_travel_through_pickling(self):
        backend = MeasuredPythonBackend(warmup=0, repeat=2)
        _, config = prepared_backend(backend, matmul(8))
        backend.measure(config)
        clone = pickle.loads(pickle.dumps(backend))
        assert clone._memo == {}

    def test_hybrid_finalize_remeasures_a_revisited_baseline_once(self):
        """The satellite pin: hill-climb style revisits plus the ``ensure``
        baseline used to cost one wall-clock run *each*; now every duplicate
        after the first is a memo hit."""
        program = matmul(8)
        backend = parse_backend_uri("hybrid:model>measure-py:warmup=0,repeat=2?top=4")
        evaluator = ConfigurationEvaluator(program, backend=backend)
        mapped = evaluator.session.compile()
        config = Configuration.from_options(evaluator.session.options, mapped.tile_sizes)
        seed_result = evaluator.evaluate(config)  # model-priced search result
        hits = MEASURE_MEMO_TOTAL.value(outcome="hit")
        with counting_stage_runs() as runs:
            finalized = evaluator.finalize(
                [seed_result, seed_result], ensure=(config,)
            )
        assert runs.counts.get("lower-py-vec", 0) == 1
        assert MEASURE_MEMO_TOTAL.value(outcome="hit") == hits + 1
        assert [r.measurement.kind for r in finalized] == ["measured-py"] * 2
        # both carry the model provenance stamp, on independent metadata dicts
        assert all(
            r.measurement.metadata["model_time_ms"] == seed_result.time_ms
            for r in finalized
        )
        assert (
            finalized[0].measurement.metadata
            is not finalized[1].measurement.metadata
        )


# -- parallel measurement ----------------------------------------------------------
class TestParallelMeasurement:
    def test_workers_and_vectorize_options_parse_and_round_trip(self):
        backend = parse_backend_uri("measure-py:warmup=0,repeat=2,workers=4")
        assert backend.workers == 4
        assert backend.measurement_workers == 4
        assert "workers=4" in backend.uri()
        again = parse_backend_uri(backend.uri())
        assert again.workers == 4 and again.signature() == backend.signature()

    def test_workers_never_fingerprint_but_vectorize_does(self):
        serial = parse_backend_uri(FAST_PY)
        parallel = parse_backend_uri(FAST_PY + ",workers=4")
        scalar = parse_backend_uri(FAST_PY + ",vectorize=off")
        assert parallel.signature() == serial.signature()
        assert scalar.signature() != serial.signature()
        assert "vectorize=off" in scalar.uri()

    def test_rejects_bad_workers_and_vectorize(self):
        with pytest.raises(ValueError, match="workers must be positive"):
            parse_backend_uri("measure-py:workers=0")
        with pytest.raises(ValueError, match="vectorize must be one of"):
            parse_backend_uri("measure-py:vectorize=maybe")

    def test_vectorize_choice_selects_the_lowering_stage(self):
        assert MeasuredPythonBackend(vectorize="auto")._stage == "lower-py-vec"
        assert MeasuredPythonBackend(vectorize="on")._stage == "lower-py-vec"
        assert MeasuredPythonBackend(vectorize="off")._stage == "lower-py"

    def test_parallel_request_is_not_serialized_and_sets_the_gauge(self):
        program = matmul(8)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            report = autotune(
                program,
                space_options=TINY_SPACE,
                backend=FAST_PY + ",workers=3",
                max_workers=8,
            )
        assert MEASURE_PARALLELISM.value() == 3  # min(max_workers, workers)
        assert report.best.measurement.kind == "measured-py"
        # the parallel request answers under the same fingerprint as serial
        serial = autotune(program, space_options=TINY_SPACE, backend=FAST_PY)
        assert report.fingerprint == serial.fingerprint
        assert len(report.results) == len(serial.results)

    def test_scalar_lowering_still_works_under_vectorize_off(self):
        report = autotune(
            matmul(8), space_options=TINY_SPACE, backend=FAST_PY + ",vectorize=off"
        )
        assert report.best.measurement.metadata["lowering"] == "lower-py"


# -- the vectorised lowering -------------------------------------------------------
class TestVectorisedLowering:
    def _run_emitted(self, program, source):
        namespace = {}
        exec(compile(source, "<vec-test>", "exec"), namespace)
        rng = np.random.default_rng(0)
        inputs = {
            a.name: rng.random(tuple(a.shape))
            for a in program.arrays.values()
            if not a.is_local
        }
        arrays = {k: v.copy() for k, v in inputs.items()}
        namespace["kernel"](arrays, {})
        return inputs, arrays

    @pytest.mark.parametrize("kernel_name,sizes", [
        ("matmul", {"m": 8, "n": 8, "k": 8}),
        ("jacobi1d", {"size": 32}),
    ])
    def test_vectorised_stage_artifact_matches_the_interpreter(
        self, kernel_name, sizes
    ):
        program = get_kernel(kernel_name).build(**sizes)
        session = CompilationSession(
            program, passes=(*DEFAULT_PASSES, "lower-py-vec")
        )
        session.compile()
        source = session.artifact("lower-py-vec").value
        assert "import numpy as _np" in source
        mapped = session.artifact("mapping").value

        namespace = {}
        exec(compile(source, "<test>", "exec"), namespace)
        rng = np.random.default_rng(0)
        inputs = {
            a.name: rng.random(tuple(a.shape))
            for a in program.arrays.values()
            if not a.is_local
        }
        arrays = {k: v.copy() for k, v in inputs.items()}
        for a in mapped.program.arrays.values():
            if a.is_local:
                arrays[a.name] = np.zeros(tuple(int(e) for e in a.shape))
        namespace["kernel"](arrays, dict(mapped.param_binding))
        reference = run_program(
            program, inputs={k: v.copy() for k, v in inputs.items()}
        )
        for a in program.arrays.values():
            if not a.is_local:
                assert np.allclose(reference.data(a.name), arrays[a.name])

    def test_vectorised_source_actually_uses_numpy(self):
        program = get_kernel("matmul").build(m=8, n=8, k=8)
        session = CompilationSession(program, passes=(*DEFAULT_PASSES, "lower-py-vec"))
        session.compile()
        source = session.artifact("lower-py-vec").value
        assert "_np.arange" in source  # at least one loop really vectorised

    def test_scalar_fallback_when_numpy_is_absent(self, monkeypatch):
        import builtins

        program = get_kernel("matmul").build(m=4, n=4, k=4)
        real_import = builtins.__import__

        def no_numpy(name, *args, **kwargs):
            if name == "numpy":
                raise ImportError("numpy removed for this test")
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(builtins, "__import__", no_numpy)
        fallback = emit_python_source_vectorized(program)
        assert fallback == emit_python_source(program)


# -- the artifact cache ------------------------------------------------------------
class TestArtifactCache:
    def test_publish_then_adopt_skips_analysis(self):
        cache = ArtifactCache(capacity=4)
        donor = CompilationSession(matmul(8))
        donor.analysis()
        assert cache.publish(donor) == ["analysis"]

        adopter = CompilationSession(matmul(8))
        hits = ARTIFACT_CACHE_TOTAL.value(outcome="hit")
        with counting_stage_runs() as runs:
            installed = cache.adopt(adopter)
            adopter.analysis()
        assert installed == ["analysis"]
        assert runs.counts.get("analysis", 0) == 0
        assert ARTIFACT_CACHE_TOTAL.value(outcome="hit") == hits + 1

    def test_different_identity_misses(self):
        cache = ArtifactCache(capacity=4)
        donor = CompilationSession(matmul(8))
        donor.analysis()
        cache.publish(donor)
        misses = ARTIFACT_CACHE_TOTAL.value(outcome="miss")
        stranger = CompilationSession(matmul(16))
        assert cache.adopt(stranger) == []
        assert ARTIFACT_CACHE_TOTAL.value(outcome="miss") == misses + 1

    def test_install_rejects_tampered_fingerprints(self):
        donor = CompilationSession(matmul(8))
        donor.analysis()
        artifact = donor.config_invariant_artifacts()["analysis"]
        forged = dataclasses.replace(artifact, fingerprint="0" * 40)
        adopter = CompilationSession(matmul(8))
        assert adopter.install_artifacts({"analysis": forged}) == []
        assert adopter.install_artifacts({"analysis": artifact}) == ["analysis"]

    def test_lru_capacity_bounds_identities(self):
        cache = ArtifactCache(capacity=1)
        for n in (8, 16):
            session = CompilationSession(matmul(n))
            session.analysis()
            cache.publish(session)
        assert len(cache) == 1

    def test_repeat_autotune_request_runs_analysis_zero_times(self):
        cache = ArtifactCache()
        cold = autotune(matmul(16), space_options=TINY_SPACE, artifact_cache=cache)
        with counting_stage_runs() as runs:
            warm = autotune(
                matmul(16), space_options=TINY_SPACE, artifact_cache=cache
            )
        assert runs.counts.get("analysis", 0) == 0
        assert warm.fingerprint == cold.fingerprint
        assert warm.best.configuration == cold.best.configuration

    def test_sharing_stays_opt_in(self):
        autotune(matmul(16), space_options=TINY_SPACE)
        with counting_stage_runs() as runs:
            autotune(matmul(16), space_options=TINY_SPACE)
        assert runs.counts["analysis"] == 1  # the honest per-request default


# -- measure-c fast path (needs a toolchain) ---------------------------------------
def _count_cc_wrapper(tmp_path):
    """A ``cc`` wrapper that appends one line to a log per invocation."""
    real = find_c_compiler()
    log = tmp_path / "cc.log"
    wrapper = tmp_path / "counting-cc"
    wrapper.write_text(f'#!/bin/sh\necho x >> "{log}"\nexec "{real}" "$@"\n')
    wrapper.chmod(0o755)
    return wrapper, log


def _cc_invocations(log):
    return len(log.read_text().splitlines()) if log.exists() else 0


def _tune_measure_c(payload):
    """Module-level so a forked worker can run one measure-c tune."""
    backend_uri, size = payload
    from repro.autotune import SpaceOptions, autotune
    from repro.kernels.registry import get_kernel

    program = get_kernel("matmul").build(m=size, n=size, k=size)
    report = autotune(
        program,
        space_options=SpaceOptions(
            thread_counts=(16,),
            block_counts=(4,),
            scratchpad_choices=(False,),
            tile_candidates_per_geometry=1,
        ),
        backend=backend_uri,
    )
    return report.best.time_ms


@requires_c_toolchain
class TestMeasureCFastPath:
    def test_warm_request_skips_every_cc_invocation(self, tmp_path):
        wrapper, log = _count_cc_wrapper(tmp_path)
        backend = f"measure-c:cc={wrapper},warmup=0,repeat=1,cache={tmp_path / 'bin'}"
        autotune(matmul(8), space_options=ONE_SPACE, backend=backend)
        cold = _cc_invocations(log)
        assert cold >= 1
        autotune(matmul(8), space_options=ONE_SPACE, backend=backend)
        assert _cc_invocations(log) == cold  # warm request: zero compiles

    def test_cache_off_recompiles_every_request(self, tmp_path):
        wrapper, log = _count_cc_wrapper(tmp_path)
        backend = f"measure-c:cc={wrapper},warmup=0,repeat=1,cache=off"
        autotune(matmul(8), space_options=ONE_SPACE, backend=backend)
        cold = _cc_invocations(log)
        autotune(matmul(8), space_options=ONE_SPACE, backend=backend)
        assert _cc_invocations(log) == 2 * cold

    def test_cache_options_round_trip_without_fingerprinting(self, tmp_path):
        cached = parse_backend_uri(f"measure-c:cache={tmp_path / 'bin'},cache_limit=7")
        assert cached.cache_limit == 7
        assert f"cache={tmp_path / 'bin'}" in cached.uri()
        assert "cache_limit=7" in cached.uri()
        again = parse_backend_uri(cached.uri())
        assert again.cache_spec == cached.cache_spec
        # where a binary came from cannot change what it measures
        assert cached.signature() == parse_backend_uri("measure-c:").signature()

    def test_two_forked_workers_share_one_cc_invocation_per_artifact(
        self, tmp_path
    ):
        """The cross-process proof: both workers tune the same kernel against
        one shared cache; the sidecar lock guarantees exactly one ``cc`` run
        per distinct harness, fleet-wide."""
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        wrapper, log = _count_cc_wrapper(tmp_path)
        backend = f"measure-c:cc={wrapper},warmup=0,repeat=1,cache={tmp_path / 'bin'}"
        context = multiprocessing.get_context("fork")
        with context.Pool(2) as pool:
            times = pool.map(_tune_measure_c, [(backend, 8), (backend, 8)])
        assert len(times) == 2
        cache = CompileCache(tmp_path / "bin")
        binaries = len(cache.entries())
        assert binaries >= 1
        assert _cc_invocations(log) == binaries

    def test_compile_failure_is_infeasible_with_truncated_stderr(
        self, tmp_path, monkeypatch
    ):
        backend = MeasuredCBackend(warmup=0, repeat=1, cache=str(tmp_path / "bin"))
        _, config = prepared_backend(backend, matmul(8))
        from repro.autotune.backends import measured_c

        monkeypatch.setattr(
            measured_c,
            "emit_c_harness",
            lambda program, **kwargs: "int main(void) { this is not C }\n",
        )
        measurement = backend.measure(config)  # must not raise
        assert measurement.feasible is False
        assert measurement.kind == "measured-c"
        assert "C compilation failed" in measurement.error
        stderr = measurement.metadata["compiler_stderr"]
        assert stderr and len(stderr) <= 2000
        assert measurement.metadata["compile_command"][0] == find_c_compiler()
        # nothing half-built got installed under the failing key
        assert CompileCache(tmp_path / "bin").entries() == []
