"""Property-style tests of the Section-4.3 integer rounding.

Whenever the relaxed SLSQP problem admits a feasible point, the rounded
integer tile vector returned by ``search_tile_sizes`` must itself satisfy
both hard constraints — the scratchpad-capacity bound and the
minimum-parallelism bound — and stay within the loop extents.
"""

from __future__ import annotations

import pytest

from repro.kernels import build_conv2d_program, build_matmul_program
from repro.machine import GEFORCE_8800_GTX
from repro.tiling.cost_model import DataMovementCostModel
from repro.tiling.tile_search import (
    TileSearchProblem,
    candidate_neighbourhood,
    search_tile_sizes,
    solve_relaxed,
)


def _matmul_model(n: int, threads: int) -> DataMovementCostModel:
    return DataMovementCostModel(
        program=build_matmul_program(n, n, n),
        tile_loops=["i", "j", "k"],
        loop_extents={"i": n, "j": n, "k": n},
        threads=threads,
        sync_cost=GEFORCE_8800_GTX.block_sync_cycles,
        transfer_cost=GEFORCE_8800_GTX.dma_cycles_per_element,
    )


def _is_relaxed_feasible(problem: TileSearchProblem, relaxed) -> bool:
    model = problem.cost_model
    return (
        model.footprint_bytes(relaxed) <= problem.memory_limit_bytes + 1e-6
        and model.work_per_tile(relaxed) >= problem.min_parallelism - 1e-6
    )


CASES = [
    (n, limit_kb, threads)
    for n in (32, 64, 128, 256)
    for limit_kb in (2, 4, 8, 16)
    for threads in (32, 128)
]


@pytest.mark.parametrize("n,limit_kb,threads", CASES)
def test_rounded_tiles_satisfy_constraints(n, limit_kb, threads):
    model = _matmul_model(n, threads)
    problem = TileSearchProblem(
        cost_model=model,
        memory_limit_bytes=limit_kb * 1024,
        min_parallelism=threads,
    )
    relaxed = solve_relaxed(problem)
    result = search_tile_sizes(problem)
    if not _is_relaxed_feasible(problem, relaxed):
        pytest.skip("relaxed problem infeasible for this corner")
    assert result.feasible, f"integer rounding lost feasibility at n={n} limit={limit_kb}KB"
    assert result.footprint_bytes <= problem.memory_limit_bytes + 1e-6
    assert model.work_per_tile(result.tile_sizes) >= problem.min_parallelism
    for loop, size in result.tile_sizes.items():
        assert 1 <= size <= model.loop_extents[loop]
        assert isinstance(size, int)


@pytest.mark.parametrize("n", [32, 128])
def test_neighbourhood_contains_relaxed_roundings(n):
    """floor/ceil of every relaxed coordinate appear among the candidates."""
    import math

    model = _matmul_model(n, 64)
    problem = TileSearchProblem(
        cost_model=model, memory_limit_bytes=8 * 1024, min_parallelism=64
    )
    relaxed = solve_relaxed(problem)
    neighbourhood = candidate_neighbourhood(problem, relaxed)
    for loop, value in relaxed.items():
        candidates = neighbourhood[loop]
        for rounding in (math.floor(value), math.ceil(value)):
            clamped = min(max(int(rounding), 1), model.loop_extents[loop])
            assert clamped in candidates


def test_rounded_cost_not_worse_than_extreme_corners():
    """The search never does worse than the trivial all-ones / full-extent tiles."""
    model = _matmul_model(64, 32)
    problem = TileSearchProblem(
        cost_model=model, memory_limit_bytes=16 * 1024, min_parallelism=32
    )
    result = search_tile_sizes(problem)
    assert result.feasible
    for corner in ({"i": 64, "j": 64, "k": 64}, {"i": 64, "j": 1, "k": 1}):
        if (
            model.footprint_bytes(corner) <= problem.memory_limit_bytes
            and model.work_per_tile(corner) >= problem.min_parallelism
        ):
            assert result.cost <= model.movement_cost(corner) + 1e-6


def test_conv2d_rounding_respects_constraints():
    """A second program shape (4-deep nest, partial staging) keeps the invariant."""
    program = build_conv2d_program(64, 64, 3)
    model = DataMovementCostModel(
        program=program,
        tile_loops=["i", "j", "k", "l"],
        loop_extents={"i": 64, "j": 64, "k": 3, "l": 3},
        threads=64,
        sync_cost=GEFORCE_8800_GTX.block_sync_cycles,
        transfer_cost=GEFORCE_8800_GTX.dma_cycles_per_element,
    )
    problem = TileSearchProblem(
        cost_model=model, memory_limit_bytes=8 * 1024, min_parallelism=64
    )
    relaxed = solve_relaxed(problem)
    result = search_tile_sizes(problem)
    if _is_relaxed_feasible(problem, relaxed):
        assert result.feasible
        assert result.footprint_bytes <= problem.memory_limit_bytes + 1e-6
        assert model.work_per_tile(result.tile_sizes) >= problem.min_parallelism
