"""Tests of the ``repro.fleet`` subsystem and the fleet-aware service.

The integration suites boot two real HTTP servers in this process (thread
executor, one shared sharded cache directory), introduce them to each other
via :meth:`TuningServer.configure_fleet`, and verify the property the ring
exists for: a tuning fingerprint has exactly one home server, so in-flight
deduplication — and therefore exactly-once tuning — holds *fleet-wide*.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from types import SimpleNamespace

import pytest

from repro.core.pipeline import COMPILE_COUNTER
from repro.fleet import FLEET_MODES, FleetRegistry, HashRing
from repro.fleet.queue import PriorityExecutor, space_cost_estimate
from repro.fleet.registry import normalize_url
from repro.telemetry import parse_prometheus_text
from repro.service import ServiceError, TuneRequest, TuningClient, TuningServer
from repro.service.worker import execute_request

SMALL_SPACE = {"thread_counts": [64], "block_counts": [16], "tile_candidates_per_geometry": 2}


def matmul_request(m: int = 32, **overrides) -> TuneRequest:
    payload = {"kernel": "matmul", "sizes": {"m": m, "n": m, "k": m}, "space": SMALL_SPACE}
    payload.update(overrides)
    return TuneRequest(**payload)


# -- consistent-hash ring ----------------------------------------------------------
class TestHashRing:
    def test_home_is_a_pure_function_of_the_member_set(self):
        members = ["http://a:1", "http://b:1", "http://c:1"]
        forward = HashRing(members)
        shuffled = HashRing(list(reversed(members)))
        for i in range(200):
            key = f"fingerprint-{i}"
            assert forward.home(key) == shuffled.home(key)

    def test_every_key_lands_on_a_member(self):
        ring = HashRing(["http://a:1", "http://b:1"])
        for i in range(100):
            assert ring.home(f"k{i}") in ring.nodes

    def test_removal_only_rehomes_the_removed_nodes_keys(self):
        members = ["http://a:1", "http://b:1", "http://c:1"]
        ring = HashRing(members)
        keys = [f"fingerprint-{i}" for i in range(500)]
        before = {key: ring.home(key) for key in keys}
        ring.remove("http://b:1")
        for key in keys:
            if before[key] != "http://b:1":
                assert ring.home(key) == before[key]
            else:
                assert ring.home(key) != "http://b:1"

    def test_balance_within_reason(self):
        ring = HashRing(["http://a:1", "http://b:1", "http://c:1"])
        shares = ring.shares([f"k{i}" for i in range(3000)])
        assert sum(shares.values()) == pytest.approx(1.0)
        for share in shares.values():
            # 128 virtual points per node keeps skew well inside 2x of fair
            assert 1 / 6 < share < 2 / 3

    def test_preference_lists_distinct_members_home_first(self):
        ring = HashRing(["http://a:1", "http://b:1", "http://c:1"])
        preferred = ring.preference("some-fingerprint", count=2)
        assert len(preferred) == 2
        assert len(set(preferred)) == 2
        assert preferred[0] == ring.home("some-fingerprint")

    def test_rejects_degenerate_configurations(self):
        with pytest.raises(ValueError, match="at least one node"):
            HashRing([])
        with pytest.raises(ValueError, match="replicas"):
            HashRing(["http://a:1"], replicas=0)
        with pytest.raises(ValueError, match="last node"):
            HashRing(["http://a:1"]).remove("http://a:1")


# -- registry ----------------------------------------------------------------------
class TestFleetRegistry:
    def test_normalize_url_yields_one_canonical_node_id(self):
        assert normalize_url("127.0.0.1:8037") == "http://127.0.0.1:8037"
        assert normalize_url("HTTP://host:1/") == "http://host:1"
        assert normalize_url(" http://host:1 ") == "http://host:1"
        with pytest.raises(ValueError, match="non-empty"):
            normalize_url("   ")

    def test_members_agree_on_every_home(self):
        a = FleetRegistry("http://a:1", ["http://b:1/"])
        b = FleetRegistry("b:1", ["http://a:1"])
        assert a.members == b.members
        for i in range(200):
            key = f"fingerprint-{i}"
            assert a.home(key) == b.home(key)
            assert a.is_home(key) != b.is_home(key)

    def test_describe_and_peers(self):
        registry = FleetRegistry("http://a:1", ["http://b:1"], mode="proxy")
        described = registry.describe()
        assert described["node"] == "http://a:1"
        assert described["mode"] == "proxy"
        assert described["size"] == 2
        assert registry.peers == ["http://b:1"]

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="fleet mode"):
            FleetRegistry("http://a:1", [], mode="gossip")
        assert set(FLEET_MODES) == {"redirect", "proxy"}


# -- priority queue ----------------------------------------------------------------
class _InstantPool:
    """A pool whose futures are already done when submit returns.

    Models the pathological-but-real case (e.g. a broken process pool failing
    work at submission) where ``add_done_callback`` runs the completion hook
    synchronously on the dispatching thread.
    """

    def submit(self, fn):
        future = Future()
        try:
            future.set_result(fn())
        except Exception as error:  # pragma: no cover - not hit in these tests
            future.set_exception(error)
        return future

    def shutdown(self, wait=True, cancel_futures=False):
        pass


class TestSpaceCostEstimate:
    def test_products_of_the_space_axes(self):
        space = SimpleNamespace(
            thread_counts=[64, 128],
            block_counts=[16],
            scratchpad_choices=[True, False],
            tile_candidates_per_geometry=3,
        )
        assert space_cost_estimate(space) == 2 * 1 * 2 * 3

    def test_unbounded_tiles_rank_as_a_large_constant(self):
        bounded = SimpleNamespace(tile_candidates_per_geometry=2)
        exhaustive = SimpleNamespace(tile_candidates_per_geometry=None)
        assert space_cost_estimate(exhaustive) > space_cost_estimate(bounded)


class TestPriorityExecutor:
    def test_queued_work_runs_high_then_cheap_then_low(self):
        order = []
        gate = threading.Event()
        started = threading.Event()
        with ThreadPoolExecutor(max_workers=1) as pool:
            executor = PriorityExecutor(pool, 1)
            blocker = executor.submit(lambda: (started.set(), gate.wait(10)))
            assert started.wait(5)
            futures = [
                executor.submit(lambda: order.append("low"), priority="low", cost=1),
                executor.submit(
                    lambda: order.append("normal-giant"), priority="normal", cost=500
                ),
                executor.submit(
                    lambda: order.append("normal-probe"), priority="normal", cost=1
                ),
                executor.submit(lambda: order.append("high"), priority="high", cost=900),
            ]
            depths = executor.queue_depths()
            assert depths == {"high": 1, "normal": 2, "low": 1}
            gate.set()
            blocker.result(timeout=10)
            for future in futures:
                future.result(timeout=10)
        # explicit class first; within a class the cheap probe overtakes the
        # giant sweep; low yields to everything
        assert order == ["high", "normal-probe", "normal-giant", "low"]

    def test_rejects_unknown_priority_class(self):
        with ThreadPoolExecutor(max_workers=1) as pool:
            executor = PriorityExecutor(pool, 1)
            with pytest.raises(ValueError, match="priority"):
                executor.submit(lambda: None, priority="urgent")

    def test_synchronously_completing_pool_does_not_deadlock(self):
        """Regression: an inner future already done at add_done_callback time
        runs _finish on the dispatching thread, inside the queue lock."""
        executor = PriorityExecutor(_InstantPool(), 1)
        outcome = {}

        def run():
            outcome["first"] = executor.submit(lambda: 7).result(timeout=5)
            outcome["second"] = executor.submit(lambda: 11).result(timeout=5)

        worker = threading.Thread(target=run, daemon=True)
        worker.start()
        worker.join(timeout=10)
        assert not worker.is_alive(), "PriorityExecutor deadlocked on sync completion"
        assert outcome == {"first": 7, "second": 11}
        # the running slot was released both times
        assert executor.queue_depths() == {"high": 0, "normal": 0, "low": 0}

    def test_shutdown_cancels_queued_tasks(self):
        gate = threading.Event()
        started = threading.Event()
        with ThreadPoolExecutor(max_workers=1) as pool:
            executor = PriorityExecutor(pool, 1)
            blocker = executor.submit(lambda: (started.set(), gate.wait(10)))
            assert started.wait(5)
            queued = executor.submit(lambda: None)
            executor.shutdown(wait=False, cancel_futures=True)
            assert queued.cancelled()
            with pytest.raises(RuntimeError, match="shutdown"):
                executor.submit(lambda: None)
            gate.set()
            blocker.result(timeout=10)


# -- protocol ----------------------------------------------------------------------
class TestPriorityOnTheWire:
    def test_priority_travels_but_does_not_split_the_fingerprint(self):
        base = matmul_request()
        urgent = matmul_request(priority="high")
        assert TuneRequest.from_dict(urgent.to_dict()) == urgent
        # priority is scheduling advice: the same work must still dedup
        assert base.resolve().fingerprint == urgent.resolve().fingerprint

    def test_rejects_unknown_priority(self):
        with pytest.raises(ValueError, match="priority"):
            matmul_request(priority="urgent")


# -- two-server fleet over HTTP ----------------------------------------------------
def _start_pair(tmp_path, mode: str):
    """Two thread-executor servers sharing one cache store, ringed together."""
    cache = f"dir:{tmp_path / 'shared-cache'}"
    first = TuningServer(port=0, executor="thread", max_workers=4, cache=cache).start()
    second = TuningServer(port=0, executor="thread", max_workers=4, cache=cache).start()
    first.configure_fleet([second.url], mode=mode)
    second.configure_fleet([first.url], mode=mode)
    return first, second


def _home_and_away(servers, request: TuneRequest):
    """(home server, non-home server) for the request's fingerprint."""
    fingerprint = request.resolve().fingerprint
    home_url = servers[0].service.fleet.home(fingerprint)
    home = next(s for s in servers if s.url == home_url)
    away = next(s for s in servers if s.url != home_url)
    return home, away


def _metric_total(client: TuningClient, name: str, **labels) -> float:
    samples = parse_prometheus_text(client.metrics())
    wanted = set(labels.items())
    return sum(
        value for key, value in samples.get(name, {}).items() if wanted <= set(key)
    )


@pytest.fixture
def redirect_pair(tmp_path):
    servers = _start_pair(tmp_path, "redirect")
    yield servers
    for server in servers:
        server.stop()


@pytest.fixture
def proxy_pair(tmp_path):
    servers = _start_pair(tmp_path, "proxy")
    yield servers
    for server in servers:
        server.stop()


class TestFleetHTTP:
    def test_members_expose_the_same_ring(self, redirect_pair):
        views = [TuningClient(server.url).fleet() for server in redirect_pair]
        assert views[0]["fleet"]["members"] == views[1]["fleet"]["members"]
        assert views[0]["fleet"]["node"] != views[1]["fleet"]["node"]
        assert views[0]["fleet"]["size"] == 2
        assert set(views[0]["queue"]) == {"high", "normal", "low"}
        health = TuningClient(redirect_pair[0].url).healthz()
        assert health["fleet"]["mode"] == "redirect"

    def test_redirected_submission_lands_and_polls_on_the_home(self, redirect_pair):
        request = matmul_request(m=40)
        home, away = _home_and_away(redirect_pair, request)
        redirects_before = _metric_total(
            TuningClient(home.url), "repro_fleet_redirects_total", mode="redirect"
        )
        pending = TuningClient(away.url).submit(request)
        # the handle follows the 307 and binds to the owning server
        assert pending.client.url == home.url
        report = pending.result(timeout=300)
        assert report.best.time_ms > 0
        assert home.service.stats()["server"]["submitted"] == 1
        assert away.service.stats()["server"]["submitted"] == 0
        assert (
            _metric_total(
                TuningClient(home.url), "repro_fleet_redirects_total", mode="redirect"
            )
            - redirects_before
        ) == 1

    def test_proxied_submission_is_answered_through_the_non_home(self, proxy_pair):
        request = matmul_request(m=44)
        home, away = _home_and_away(proxy_pair, request)
        pending = TuningClient(away.url).submit(request)
        assert pending.client.url == home.url  # node field names the owner
        report = pending.result(timeout=300)
        assert report.best.time_ms > 0
        # the job ran home despite being posted to the other member
        assert home.service.stats()["server"]["tuning_runs"] == 1
        assert away.service.stats()["server"]["tuning_runs"] == 0

    def test_eight_concurrent_submissions_on_both_servers_cost_one_run(
        self, redirect_pair
    ):
        """The fleet acceptance criterion: exactly-once holds across servers."""
        request = matmul_request(m=48)
        expected_compiles = execute_request(request.to_dict())["compiles"]
        assert expected_compiles > 0
        home, away = _home_and_away(redirect_pair, request)
        clients = [TuningClient(home.url), TuningClient(away.url)]

        start = COMPILE_COUNTER.count
        with ThreadPoolExecutor(max_workers=8) as pool:
            handles = list(
                pool.map(lambda i: clients[i % 2].submit(request), range(8))
            )
        reports = [handle.result(timeout=300) for handle in handles]

        # one tuning run's worth of compiles fleet-wide, not eight
        assert COMPILE_COUNTER.count - start == expected_compiles
        assert all(r.to_dict() == reports[0].to_dict() for r in reports)
        home_stats = home.service.stats()["server"]
        away_stats = away.service.stats()["server"]
        assert home_stats["tuning_runs"] == 1
        assert away_stats["tuning_runs"] == 0
        # every submission was routed home and deduplicated there
        assert home_stats["submitted"] == 8
        assert home_stats["deduplicated"] + home_stats["cache_hits"] == 7

    def test_batch_submission_returns_live_handles_in_order(self, redirect_pair):
        requests = [
            matmul_request(m=52, priority="high"),
            matmul_request(m=52, priority="high"),  # dedups with the first
            matmul_request(m=56, priority="low"),
        ]
        client = TuningClient(redirect_pair[0].url)
        handles = client.submit_batch(requests)
        assert len(handles) == 3
        assert handles[0].fingerprint == handles[1].fingerprint
        assert handles[2].fingerprint != handles[0].fingerprint
        reports = [handle.result(timeout=300) for handle in handles]
        assert reports[0].to_dict() == reports[1].to_dict()
        # each handle polls the member that owns its job
        for request, handle in zip(requests, handles):
            home, _away = _home_and_away(redirect_pair, request)
            assert handle.client.url == home.url

    def test_batch_rejects_a_malformed_item(self, redirect_pair):
        client = TuningClient(redirect_pair[0].url)
        with pytest.raises(ServiceError, match="batch item rejected"):
            client.submit_batch(
                [matmul_request(m=40).to_dict(), {"kernel": "no_such_kernel"}]
            )

    def test_completed_job_costs_at_most_two_status_requests(self, redirect_pair):
        """Long-polling: waiting out a job is one or two round trips, not a
        20Hz polling loop."""
        request = matmul_request(m=60)
        home, _away = _home_and_away(redirect_pair, request)
        client = TuningClient(home.url)
        before = _metric_total(
            client, "repro_http_requests_total", method="GET", endpoint="/status"
        )
        pending = client.submit(request)
        job = pending.job(timeout=300)
        assert job["status"] == "done"
        polls = (
            _metric_total(
                client, "repro_http_requests_total", method="GET", endpoint="/status"
            )
            - before
        )
        assert polls <= 2

    def test_dashboard_renders_the_fleet_section(self, redirect_pair):
        html = TuningClient(redirect_pair[0].url).dashboard()
        assert "<h2>Fleet</h2>" in html
        assert "this server" in html
        for server in redirect_pair:
            assert server.url in html


# -- client retry ------------------------------------------------------------------
class TestClientRetry:
    def _flaky(self, client: TuningClient, failures: int, status=503):
        calls = {"n": 0}

        def fake_request(method, url, payload):
            calls["n"] += 1
            if calls["n"] <= failures:
                raise ServiceError("unavailable", status=status)
            return {"ok": True}

        client._request_once = fake_request
        return calls

    def test_disabled_by_default(self):
        client = TuningClient("http://127.0.0.1:1")
        calls = self._flaky(client, failures=1)
        with pytest.raises(ServiceError):
            client._call("GET", "/healthz")
        assert calls["n"] == 1

    def test_transient_failures_are_retried_with_backoff(self, monkeypatch):
        delays = []
        monkeypatch.setattr(
            "repro.service.client.time.sleep", lambda s: delays.append(s)
        )
        client = TuningClient("http://127.0.0.1:1", retries=3, backoff=0.1)
        calls = self._flaky(client, failures=2)
        assert client._call("GET", "/healthz") == {"ok": True}
        assert calls["n"] == 3
        assert len(delays) == 2
        # exponential schedule with 50-100% full jitter per attempt
        assert 0.05 <= delays[0] <= 0.1
        assert 0.10 <= delays[1] <= 0.2

    def test_non_transient_errors_are_not_retried(self, monkeypatch):
        monkeypatch.setattr("repro.service.client.time.sleep", lambda s: None)
        client = TuningClient("http://127.0.0.1:1", retries=5)
        calls = self._flaky(client, failures=1, status=400)
        with pytest.raises(ServiceError):
            client._call("GET", "/healthz")
        assert calls["n"] == 1

    def test_retry_budget_is_finite(self, monkeypatch):
        monkeypatch.setattr("repro.service.client.time.sleep", lambda s: None)
        client = TuningClient("http://127.0.0.1:1", retries=2, backoff=0.01)
        calls = self._flaky(client, failures=10)
        with pytest.raises(ServiceError):
            client._call("GET", "/healthz")
        assert calls["n"] == 3  # the first attempt plus two retries

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="retries"):
            TuningClient("http://127.0.0.1:1", retries=-1)
        with pytest.raises(ValueError, match="backoff"):
            TuningClient("http://127.0.0.1:1", backoff=0.0)
