"""Tests of ``repro.autotune.backends`` — pluggable evaluation backends.

Covers the URI grammar, the four backends (model / measure-py / measure-c /
hybrid), the backend↔cache interaction (distinct fingerprints per backend,
``measurement.kind`` provenance in cached entries and ``cache-stats``), the
``lower-py`` terminal pass, toolchain detection, and the ISSUE-5 acceptance
criterion: a hybrid tune's best entry records ``measured-py`` provenance
while ``STAGE_COUNTER`` proves analysis ran once and ``lower-py`` ran
O(top-K) times.

``measure-c`` tests skip cleanly on toolchain-less machines via the
``requires_c_toolchain`` marker built on
:func:`repro.codegen.toolchain.c_toolchain_skip_reason`.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.codegen.toolchain import c_toolchain_skip_reason, find_c_compiler
from repro.compiler import (
    DEFAULT_PASSES,
    PASS_REGISTRY,
    CompilationSession,
    counting_stage_runs,
)
from repro.kernels.registry import get_kernel
from repro.runtime.interpreter import run_program
from repro.autotune import (
    ConfigurationEvaluator,
    SpaceOptions,
    TuningCache,
    autotune,
    tuning_fingerprint,
)
from repro.autotune.backends import (
    BackendUnavailable,
    EvaluationBackend,
    HybridBackend,
    Measurement,
    MeasuredCBackend,
    MeasuredPythonBackend,
    ModelBackend,
    available_backends,
    parse_backend_uri,
    resolve_backend,
    trimmed_median,
)
from repro.autotune.cli import cache_stats_main
from repro.autotune.evaluate import EvaluationResult

requires_c_toolchain = pytest.mark.skipif(
    c_toolchain_skip_reason() is not None,
    reason=c_toolchain_skip_reason() or "C toolchain present",
)

#: collapses to very few candidates — for fast smoke paths
TINY_SPACE = SpaceOptions(
    thread_counts=(64,), block_counts=(16,), tile_candidates_per_geometry=2
)
#: a dozen-plus candidates — for re-ranking / provenance assertions
WIDE_SPACE = SpaceOptions(
    thread_counts=(16, 32), block_counts=(4, 8), tile_candidates_per_geometry=3
)
FAST_PY = "measure-py:warmup=0,repeat=2"


def matmul(n: int = 8):
    return get_kernel("matmul").build(m=n, n=n, k=n)


# -- URI grammar -------------------------------------------------------------------
class TestBackendUris:
    def test_registry_lists_all_four(self):
        assert available_backends() == ["hybrid", "measure-c", "measure-py", "model"]

    def test_model_parses_with_and_without_colon(self):
        assert isinstance(parse_backend_uri("model"), ModelBackend)
        assert isinstance(parse_backend_uri("model:"), ModelBackend)

    def test_none_resolves_to_the_model(self):
        assert isinstance(resolve_backend(None), ModelBackend)

    def test_instances_pass_through_resolve(self):
        backend = MeasuredPythonBackend(repeat=3)
        assert resolve_backend(backend) is backend

    def test_resolve_rejects_other_types(self):
        with pytest.raises(TypeError, match="backend must be"):
            resolve_backend(42)

    def test_unknown_scheme_lists_the_registry(self):
        with pytest.raises(ValueError, match="available: hybrid, measure-c"):
            parse_backend_uri("cuda:")

    def test_measure_py_options(self):
        backend = parse_backend_uri("measure-py:warmup=2,repeat=9,trim=0.1")
        assert (backend.warmup, backend.repeat, backend.trim) == (2, 9, 0.1)

    def test_measure_py_rejects_unknown_options(self):
        with pytest.raises(ValueError, match="unknown options \\['repeats'\\]"):
            parse_backend_uri("measure-py:repeats=3")

    def test_measure_py_rejects_bad_values(self):
        with pytest.raises(ValueError, match="repeat must be positive"):
            parse_backend_uri("measure-py:repeat=0")
        with pytest.raises(ValueError, match="trim must be in"):
            parse_backend_uri("measure-py:trim=0.5")

    def test_model_accepts_no_options(self):
        with pytest.raises(ValueError, match="accepts no options"):
            parse_backend_uri("model:warmup=1")

    def test_malformed_option_syntax(self):
        with pytest.raises(ValueError, match="key=value"):
            parse_backend_uri("measure-py:warmup")

    def test_measure_c_options(self):
        backend = parse_backend_uri("measure-c:cc=gcc,repeat=7")
        assert backend.cc == "gcc"
        assert backend.repeat == 7

    def test_hybrid_parses_primary_secondary_and_top(self):
        backend = parse_backend_uri("hybrid:model>measure-py?top=4")
        assert isinstance(backend, HybridBackend)
        assert isinstance(backend.primary, ModelBackend)
        assert isinstance(backend.secondary, MeasuredPythonBackend)
        assert backend.top == 4
        assert backend.kind == "measured-py"

    def test_hybrid_secondary_options_thread_through(self):
        backend = parse_backend_uri("hybrid:model>measure-py:warmup=0,repeat=2?top=3")
        assert backend.secondary.repeat == 2

    def test_hybrid_defaults_top_to_8(self):
        assert parse_backend_uri("hybrid:model>measure-py").top == 8

    def test_hybrid_rejects_missing_separator(self):
        with pytest.raises(ValueError, match="PRIMARY>SECONDARY"):
            parse_backend_uri("hybrid:model")

    def test_hybrid_rejects_nesting(self):
        with pytest.raises(ValueError, match="do not nest"):
            parse_backend_uri("hybrid:model>hybrid:model>measure-py")

    def test_hybrid_rejects_unknown_query_options(self):
        with pytest.raises(ValueError, match="unknown options \\['topk'\\]"):
            parse_backend_uri("hybrid:model>measure-py?topk=2")

    def test_uris_round_trip(self):
        for uri in ("model:", FAST_PY, "hybrid:model>measure-py?top=4"):
            backend = parse_backend_uri(uri)
            again = parse_backend_uri(backend.uri())
            assert again.signature() == backend.signature()

    def test_hybrid_uri_preserves_secondary_options(self):
        # the recorded provenance URI must name the *actual* measurement
        # parameters, not the defaults — and re-parse to the same signature
        backend = parse_backend_uri("hybrid:model>measure-py:warmup=0,repeat=2?top=4")
        assert "warmup=0" in backend.uri() and "repeat=2" in backend.uri()
        assert parse_backend_uri(backend.uri()).signature() == backend.signature()


# -- Measurement / EvaluationResult serialisation ----------------------------------
class TestMeasurementSerialisation:
    def test_measurement_round_trips(self):
        measurement = Measurement(
            time_ms=1.5, kind="measured-py", metadata={"repeat": 3}
        )
        assert Measurement.from_dict(measurement.to_dict()) == measurement

    def test_result_carries_measurement_through_dict(self):
        report = autotune(matmul(), space_options=TINY_SPACE, backend=FAST_PY)
        payload = report.best.to_dict()
        restored = EvaluationResult.from_dict(payload)
        assert restored.measurement is not None
        assert restored.measurement.kind == "measured-py"
        assert restored.measurement_kind == "measured-py"

    def test_legacy_payload_without_measurement_reads_as_model(self):
        report = autotune(matmul(), space_options=TINY_SPACE)
        payload = report.best.to_dict()
        payload.pop("measurement")
        restored = EvaluationResult.from_dict(payload)
        assert restored.measurement is None
        assert restored.measurement_kind == "model"

    def test_trimmed_median(self):
        assert trimmed_median([5.0], 0.2) == 5.0
        assert trimmed_median([1.0, 2.0, 100.0], 0.34) == 2.0  # outlier dropped
        with pytest.raises(ValueError):
            trimmed_median([], 0.2)


# -- the model backend (extraction must not change behaviour) ----------------------
class TestModelBackend:
    def test_explicit_model_matches_default(self):
        default = autotune(matmul(), space_options=TINY_SPACE)
        explicit = autotune(matmul(), space_options=TINY_SPACE, backend="model:")
        assert explicit.fingerprint == default.fingerprint
        assert explicit.best.configuration == default.best.configuration
        assert explicit.best.time_ms == default.best.time_ms

    def test_model_results_carry_model_measurements(self):
        report = autotune(matmul(), space_options=TINY_SPACE)
        assert report.backend == "model:"
        for result in report.results:
            if result.feasible:
                assert result.measurement is not None
                assert result.measurement.kind == "model"
                assert result.breakdown  # the model's cost breakdown survives

    def test_infeasible_configurations_stay_infeasible_not_raising(self):
        program = matmul(8)
        evaluator = ConfigurationEvaluator(program)
        from repro.autotune.space import Configuration

        absurd = Configuration.make(16, 64, {"i": 8, "j": 8, "k": 8}, True)
        # threads exceed the tile's work → the compiler refuses; the
        # evaluator must report infeasible, never raise
        result = evaluator.evaluate(
            Configuration.make(10_000, 100_000, {"i": 1, "j": 1, "k": 1}, True)
        )
        assert isinstance(result.feasible, bool)


# -- the measured-python backend ---------------------------------------------------
class TestMeasuredPythonBackend:
    def test_measures_wall_clock_with_provenance(self):
        report = autotune(matmul(), space_options=TINY_SPACE, backend=FAST_PY)
        best = report.best
        assert best.measurement.kind == "measured-py"
        assert best.time_ms > 0
        assert len(best.measurement.metadata["times_ms"]) == 2
        assert report.backend.startswith("measure-py:")

    def test_analysis_runs_once_and_lowering_once_per_candidate(self):
        program = matmul(16)
        with counting_stage_runs() as runs:
            report = autotune(program, space_options=WIDE_SPACE, backend=FAST_PY)
        assert runs.counts["analysis"] == 1
        # vectorize=auto (the default) lowers through the vectorised terminal
        assert runs.counts["lower-py-vec"] == len(report.results)
        # every candidate was measured, so every result is provenance-stamped
        assert all(
            r.measurement.kind == "measured-py" for r in report.results if r.feasible
        )

    def test_evaluator_with_backend_pickles_for_process_executors(self):
        evaluator = ConfigurationEvaluator(matmul(), backend=FAST_PY)
        clone = pickle.loads(pickle.dumps(evaluator))
        config = clone.session.compile()
        assert clone.backend.repeat == 2

    def test_parallel_evaluation_is_serialized_with_a_warning(self):
        # concurrent timed runs would inflate each other's perf_counter
        # windows; the request must degrade to serial, loudly
        with pytest.warns(RuntimeWarning, match="serializing"):
            report = autotune(
                matmul(), space_options=TINY_SPACE, backend=FAST_PY, max_workers=4
            )
        assert report.best.measurement.kind == "measured-py"

    def test_hybrid_with_model_primary_keeps_parallel_search(self):
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error", RuntimeWarning)
            autotune(
                matmul(),
                space_options=TINY_SPACE,
                backend="hybrid:model>measure-py:warmup=0,repeat=2?top=2",
                max_workers=4,
            )

    def test_runtime_failures_surface_instead_of_reading_as_infeasible(self, monkeypatch):
        # a codegen/runtime bug (here: corrupted input shapes) must never be
        # silently recorded as "infeasible mapping"
        import numpy as np

        backend = MeasuredPythonBackend(warmup=0, repeat=1)
        monkeypatch.setattr(
            MeasuredPythonBackend,
            "_seeded_arrays",
            lambda self, program: {
                a.name: np.zeros((1,)) for a in program.arrays.values()
            },
        )
        evaluator = ConfigurationEvaluator(matmul(), backend=backend)
        mapped = evaluator.session.compile()
        from repro.autotune.space import Configuration

        config = Configuration.from_options(evaluator.session.options, mapped.tile_sizes)
        with pytest.raises((RuntimeError, IndexError)):
            backend.measure(config)


# -- the hybrid backend (ISSUE 5 acceptance) ---------------------------------------
class TestHybridBackend:
    def test_hybrid_best_is_measured_and_cached_with_provenance(self):
        program = matmul(16)
        cache = TuningCache()
        with counting_stage_runs() as runs:
            report = autotune(
                program,
                space_options=WIDE_SPACE,
                backend="hybrid:model>measure-py:warmup=0,repeat=2?top=8",
                cache=cache,
            )
        # the winner was decided by measurement, and the cache records it
        assert report.best.measurement.kind == "measured-py"
        entry = cache.peek(report.fingerprint)
        assert entry["best"]["measurement"]["kind"] == "measured-py"
        # analysis once per request; lowering O(top + baseline), not O(space)
        assert runs.counts["analysis"] == 1
        assert 1 <= runs.counts["lower-py-vec"] <= 8 + 1
        assert len(report.results) > 8  # the model really pruned a wider set
        # un-measured survivors keep their model provenance for inspection
        kinds = {r.measurement_kind for r in report.results}
        assert kinds == {"model", "measured-py"}

    def test_hybrid_baseline_is_remeasured_for_comparable_speedups(self):
        report = autotune(
            matmul(16),
            space_options=WIDE_SPACE,
            backend="hybrid:model>measure-py:warmup=0,repeat=2?top=2",
        )
        assert report.baseline.measurement_kind == "measured-py"
        assert report.speedup_over_baseline >= 1.0

    def test_hybrid_never_crowns_an_unmeasured_candidate(self):
        backend = parse_backend_uri("hybrid:model>measure-py?top=1")
        measured = EvaluationResult.from_dict(
            {
                "configuration": {"num_blocks": 16, "threads_per_block": 64,
                                  "tile_sizes": {"i": 2}, "use_scratchpad": True},
                "time_ms": 50.0, "cycles": 1.0, "feasible": True,
                "measurement": {"time_ms": 50.0, "kind": "measured-py"},
            }
        )
        model_priced = EvaluationResult.from_dict(
            {
                "configuration": {"num_blocks": 32, "threads_per_block": 64,
                                  "tile_sizes": {"i": 4}, "use_scratchpad": True},
                "time_ms": 0.001, "cycles": 1.0, "feasible": True,
                "measurement": {"time_ms": 0.001, "kind": "model"},
            }
        )
        # 0.001 model-ms would "win" a naive comparison against 50 wall-ms
        best = backend.select_best([measured, model_priced])
        assert best is measured


# -- backend ↔ cache interaction ---------------------------------------------------
class TestBackendCacheInteraction:
    def test_model_and_measured_occupy_distinct_cache_keys(self, tmp_path):
        program = matmul()
        cache = TuningCache(tmp_path / "cache.json")
        model_report = autotune(program, space_options=TINY_SPACE, cache=cache)
        measured_report = autotune(
            program, space_options=TINY_SPACE, cache=cache, backend=FAST_PY
        )
        assert model_report.fingerprint != measured_report.fingerprint
        assert len(cache) == 2
        counts = cache.measurement_kind_counts()
        assert counts == {"model": 1, "measured-py": 1}

    def test_fingerprints_distinguish_backend_knobs_and_seed(self):
        program = matmul()
        base = tuning_fingerprint(program, space_options=TINY_SPACE, backend=FAST_PY)
        other_repeat = tuning_fingerprint(
            program, space_options=TINY_SPACE, backend="measure-py:warmup=0,repeat=3"
        )
        other_seed = tuning_fingerprint(
            program, space_options=TINY_SPACE, backend=FAST_PY, seed=1
        )
        assert len({base, other_repeat, other_seed}) == 3
        # the model ignores the seed (deterministic pricing, pruned strategy)
        assert tuning_fingerprint(program, space_options=TINY_SPACE) == (
            tuning_fingerprint(program, space_options=TINY_SPACE, seed=1)
        )

    def test_warm_hit_restores_backend_and_provenance(self, tmp_path):
        program = matmul()
        cache_spec = str(tmp_path / "cache.json")
        cold = autotune(
            program, space_options=TINY_SPACE, cache=cache_spec, backend=FAST_PY
        )
        warm = autotune(
            program, space_options=TINY_SPACE, cache=cache_spec, backend=FAST_PY
        )
        assert warm.from_cache
        assert warm.backend == cold.backend
        assert warm.best.measurement.kind == "measured-py"

    def test_cache_stats_cli_reports_per_kind_counts(self, tmp_path, capsys):
        program = matmul()
        cache_spec = str(tmp_path / "cache.json")
        cache = TuningCache(cache_spec)
        autotune(program, space_options=TINY_SPACE, cache=cache)
        autotune(program, space_options=TINY_SPACE, cache=cache, backend=FAST_PY)
        assert cache_stats_main(["--cache", cache_spec]) == 0
        output = capsys.readouterr().out
        assert "kinds: measured-py=1 model=1" in output


# -- the measured-C backend --------------------------------------------------------
class TestMeasuredCBackend:
    def test_unavailable_toolchain_fails_fast_and_clean(self):
        with pytest.raises(BackendUnavailable, match="no C toolchain"):
            autotune(
                matmul(),
                space_options=TINY_SPACE,
                backend="measure-c:cc=definitely-not-a-compiler-xyz",
            )

    @requires_c_toolchain
    def test_compiles_and_times_the_emitted_c(self):
        report = autotune(
            matmul(),
            space_options=TINY_SPACE,
            backend="measure-c:warmup=0,repeat=2",
        )
        best = report.best
        assert best.measurement.kind == "measured-c"
        assert best.time_ms > 0
        assert best.measurement.metadata["compiler"]
        assert best.measurement.metadata["checksum"].startswith("checksum")

    @requires_c_toolchain
    def test_c_and_python_lowerings_agree_on_the_winner_inputs(self):
        # the C harness seeds arrays with its own LCG; the important
        # agreement is structural: same program, same loop semantics —
        # checked bit-for-bit in the emitter smoke (checksum vs emit_py)
        backend = MeasuredCBackend(warmup=0, repeat=1)
        session = CompilationSession(matmul())
        from repro.machine.spec import GEFORCE_8800_GTX

        backend.prepare(session, GEFORCE_8800_GTX)
        mapped = session.compile()
        from repro.autotune.space import Configuration

        config = Configuration.from_options(session.options, mapped.tile_sizes)
        measurement = backend.measure(config)
        assert measurement.feasible
        assert measurement.time_ms >= 0


class TestToolchainDetection:
    def test_missing_compiler_returns_none(self):
        assert find_c_compiler("definitely-not-a-compiler-xyz") is None
        assert c_toolchain_skip_reason("definitely-not-a-compiler-xyz") is not None

    def test_cc_env_is_honoured(self, monkeypatch):
        real = find_c_compiler()
        if real is None:
            pytest.skip("no toolchain to point $CC at")
        monkeypatch.setenv("CC", real)
        assert find_c_compiler() == real

    def test_empty_path_finds_nothing(self, monkeypatch):
        monkeypatch.setenv("PATH", "/nonexistent")
        monkeypatch.delenv("CC", raising=False)
        assert find_c_compiler() is None


# -- the lower-py terminal pass ----------------------------------------------------
class TestLowerPyPass:
    def test_registered_beside_emit(self):
        assert "lower-py" in PASS_REGISTRY
        assert "emit" in PASS_REGISTRY

    def test_artifact_is_executable_python_matching_the_interpreter(self):
        program = matmul(8)
        session = CompilationSession(program, passes=(*DEFAULT_PASSES, "lower-py"))
        session.compile()
        source = session.artifact("lower-py").value
        assert "def kernel(arrays, params):" in source
        mapped = session.artifact("mapping").value

        namespace = {}
        exec(compile(source, "<test>", "exec"), namespace)
        rng = np.random.default_rng(0)
        inputs = {
            a.name: rng.random(tuple(a.shape))
            for a in program.arrays.values()
            if not a.is_local
        }
        arrays = {k: v.copy() for k, v in inputs.items()}
        for a in mapped.program.arrays.values():
            if a.is_local:
                arrays[a.name] = np.zeros(tuple(int(e) for e in a.shape))
        namespace["kernel"](arrays, dict(mapped.param_binding))
        reference = run_program(program, inputs={k: v.copy() for k, v in inputs.items()})
        for a in program.arrays.values():
            if not a.is_local:
                assert np.allclose(reference.data(a.name), arrays[a.name])

    def test_derived_session_reuses_frozen_analysis(self):
        program = matmul(8)
        shared = CompilationSession(program)
        shared.analysis()  # freeze it
        derived = shared.with_passes((*DEFAULT_PASSES, "lower-py"))
        with counting_stage_runs() as runs:
            artifacts = derived.replay_artifacts(
                options=shared.options.with_overrides(tile_sizes={"i": 4, "j": 4, "k": 4}),
                upto="lower-py",
            )
        assert "lower-py" in artifacts
        assert runs.counts.get("analysis", 0) == 0  # adopted, not re-run

    def test_inspect_stages_shows_lower_py_timings(self, capsys):
        from repro.autotune.cli import inspect_stages_main

        assert inspect_stages_main(["matmul", "--size", "m=16", "n=16", "k=16"]) == 0
        output = capsys.readouterr().out
        assert "lower-py" in output
        assert "analysis ran 1x" in output


# -- custom backends stay pluggable ------------------------------------------------
class TestCustomBackends:
    def test_register_and_tune_with_a_custom_backend(self):
        class ConstantBackend(EvaluationBackend):
            scheme = "constant-test"
            kind = "model"

            def _measure(self, configuration):
                self._require_prepared()
                return Measurement(time_ms=1.0, kind=self.kind)

        report = autotune(
            matmul(), space_options=TINY_SPACE, backend=ConstantBackend()
        )
        assert report.best.time_ms == 1.0
        assert report.backend == "constant-test:"
