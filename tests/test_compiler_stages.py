"""Tests of the staged compiler (`repro.compiler`): passes, sessions, replay."""

from __future__ import annotations

import pytest

from repro import COMPILE_COUNTER, MappingOptions, MappingPipeline, autotune
from repro.compiler import (
    CompilationSession,
    DEFAULT_PASSES,
    PASS_REGISTRY,
    PassManager,
    counting_stage_runs,
)
from repro.autotune import SpaceOptions, TuningCache
from repro.autotune.space import Configuration
from repro.ir.printer import program_to_c
from repro.kernels import build_matmul_program
from repro.kernels.registry import available_kernels, get_kernel

SMALL_SPACE = SpaceOptions(
    thread_counts=(64,), block_counts=(16,), tile_candidates_per_geometry=2
)


def mapped_equal(left, right) -> bool:
    """Bit-for-bit equivalence of two mapped kernels' observable output."""
    return (
        program_to_c(left.program) == program_to_c(right.program)
        and left.tile_sizes == right.tile_sizes
        and left.outer_tile_sizes == right.outer_tile_sizes
        and left.geometry == right.geometry
        and left.workload == right.workload
        and left.global_sync_rounds == right.global_sync_rounds
        and left.param_binding == right.param_binding
    )


# -- sessions ----------------------------------------------------------------------
class TestCompilationSession:
    def test_compile_caches_artifacts_and_counts_once(self):
        program = build_matmul_program(32, 32, 32)
        session = CompilationSession(program)
        COMPILE_COUNTER.reset()
        with counting_stage_runs() as first:
            mapped = session.compile()
        assert COMPILE_COUNTER.count == 1
        assert first.counts == {stage: 1 for stage in DEFAULT_PASSES}
        # a second compile is fully cached: no stage runs, no compile counted
        with counting_stage_runs() as second:
            again = session.compile()
        assert second.counts == {}
        assert COMPILE_COUNTER.count == 1
        assert again is mapped

    def test_artifact_access_counts_the_compile(self):
        """Reaching the mapping artifact any way counts as one compile."""
        session = CompilationSession(build_matmul_program(16, 16, 16))
        COMPILE_COUNTER.reset()
        session.artifact("mapping")
        assert COMPILE_COUNTER.count == 1
        session.compile()  # fully cached — still one compile
        assert COMPILE_COUNTER.count == 1

    def test_replay_runs_only_config_dependent_stages(self):
        program = build_matmul_program(32, 32, 32)
        session = CompilationSession(program)
        session.compile()
        config = Configuration.make(16, 64, {"i": 8, "j": 8, "k": 16})
        with counting_stage_runs() as runs:
            session.replay(from_stage="tiling", config=config)
        assert runs.counts == {"tiling": 1, "scratchpad": 1, "mapping": 1}

    @pytest.mark.parametrize("kernel_name", available_kernels())
    def test_replay_equals_cold_compile_for_every_kernel(self, kernel_name):
        """Acceptance: replay output is bit-for-bit a cold compile's output,
        with strictly fewer stage executions."""
        kernel = get_kernel(kernel_name)
        program = kernel.build_check()
        session = CompilationSession(program)
        mapped = session.compile()
        config = Configuration.from_options(session.options, mapped.tile_sizes)

        with counting_stage_runs() as replay_runs:
            replayed = session.replay(from_stage="tiling", config=config)
        with counting_stage_runs() as cold_runs:
            cold = CompilationSession(
                kernel.build_check(), options=config.to_options()
            ).compile()

        assert mapped_equal(replayed, cold)
        assert replay_runs.total < cold_runs.total
        assert "analysis" not in replay_runs.counts

    def test_replay_from_scratchpad_rematerialises_tiling(self):
        """The scratchpad stage mutates the tiled program in place; replaying
        from it twice must still match a cold compile bit-for-bit."""
        program = build_matmul_program(32, 32, 32)
        config = Configuration.make(16, 64, {"i": 8, "j": 8, "k": 16})
        # explicit tile sizes in the base options: the tiling fingerprint then
        # survives the replay, so the artifact is legitimately reusable
        session = CompilationSession(program, options=config.to_options())
        session.compile()
        first = session.replay(from_stage="scratchpad", config=config)
        second = session.replay(from_stage="scratchpad", config=config)
        cold = CompilationSession(
            build_matmul_program(32, 32, 32), options=config.to_options()
        ).compile()
        assert mapped_equal(first, cold)
        assert mapped_equal(second, cold)

    def test_replay_unknown_stage_lists_valid_stages(self):
        session = CompilationSession(build_matmul_program(16, 16, 16))
        with pytest.raises(ValueError, match="valid stages: analysis, tiling"):
            session.replay(from_stage="tilng", config=Configuration.make(16, 64, {"i": 8}))

    def test_replay_refuses_stale_upstream_artifacts(self):
        """A config that changes tile sizes cannot replay from scratchpad."""
        program = build_matmul_program(32, 32, 32)
        session = CompilationSession(program)
        mapped = session.compile()
        changed = dict(mapped.tile_sizes)
        changed["i"] = max(1, changed["i"] // 2)
        config = Configuration.make(
            session.options.num_blocks, session.options.threads_per_block, changed
        )
        with pytest.raises(ValueError, match="replay from 'tiling'"):
            session.replay(from_stage="scratchpad", config=config)

    def test_replay_options_and_config_are_exclusive(self):
        session = CompilationSession(build_matmul_program(16, 16, 16))
        with pytest.raises(ValueError, match="not both"):
            session.replay(
                config=Configuration.make(16, 64, {"i": 8}),
                options=MappingOptions(),
            )

    def test_stage_report_carries_runs_and_fingerprints(self):
        session = CompilationSession(build_matmul_program(32, 32, 32))
        session.compile()
        report = {row["stage"]: row for row in session.stage_report()}
        assert list(report) == list(DEFAULT_PASSES)
        assert not report["analysis"]["config_dependent"]
        assert report["tiling"]["config_dependent"]
        for row in report.values():
            assert row["runs"] == 1
            assert row["fingerprint"]

    def test_fingerprints_isolate_config_invariant_stages(self):
        program = build_matmul_program(32, 32, 32)
        base = CompilationSession(program)
        other = CompilationSession(
            program, options=MappingOptions(threads_per_block=128)
        )
        base.compile()
        other.compile()
        # analysis depends only on (program, params, spec) — identical
        assert (
            base.artifact("analysis").fingerprint
            == other.artifact("analysis").fingerprint
        )
        # tiling reads threads_per_block — must differ
        assert (
            base.artifact("tiling").fingerprint
            != other.artifact("tiling").fingerprint
        )
        # and everything is deterministic across sessions
        again = CompilationSession(program)
        again.compile()
        for stage in DEFAULT_PASSES:
            assert (
                again.artifact(stage).fingerprint == base.artifact(stage).fingerprint
            )

    def test_emit_terminal_pass_renders_c(self):
        session = CompilationSession(
            build_matmul_program(16, 16, 16), passes=(*DEFAULT_PASSES, "emit")
        )
        session.compile()
        text = session.artifact("emit").value
        assert "matmul" in text
        assert "/* kernel" in text
        assert "blocks=" in text
        # replays stop at the mapping stage: no per-candidate render
        with counting_stage_runs() as runs:
            session.replay(config=Configuration.make(8, 64, {"i": 8, "j": 8, "k": 8}))
        assert "emit" not in runs.counts
        assert runs.counts["mapping"] == 1
        # render_c() on a default session lazily runs the emit pass too
        plain = CompilationSession(build_matmul_program(16, 16, 16))
        assert "matmul" in plain.render_c()


# -- pass manager ------------------------------------------------------------------
class TestPassManager:
    def test_unknown_pass_name_lists_registry(self):
        with pytest.raises(ValueError, match="registered passes: analysis"):
            PassManager(passes=["analysis", "tilng"])

    def test_pipeline_validates_pass_names_at_construction(self):
        with pytest.raises(ValueError, match="unknown pass 'bogus'"):
            MappingPipeline(passes=["bogus"])
        assert sorted(PASS_REGISTRY) == sorted(
            ["analysis", "tiling", "scratchpad", "mapping", "emit",
             "lower-py", "lower-py-vec"]
        )

    def test_duplicate_pass_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate pass name"):
            PassManager(passes=["analysis", "analysis"])

    def test_hooks_observe_every_pass_run(self):
        events = []
        manager = PassManager()
        manager.add_hook(lambda name, artifact, elapsed: events.append(name))
        session = CompilationSession(build_matmul_program(16, 16, 16), manager=manager)
        session.compile()
        assert events == list(DEFAULT_PASSES)
        timings = {t.stage: t for t in manager.timings()}
        assert all(timings[stage].runs == 1 for stage in DEFAULT_PASSES)
        assert timings["tiling"].total_seconds > 0

    def test_session_rejects_manager_plus_passes(self):
        with pytest.raises(ValueError, match="not both"):
            CompilationSession(
                build_matmul_program(16, 16, 16),
                passes=DEFAULT_PASSES,
                manager=PassManager(),
            )


# -- deprecation shims -------------------------------------------------------------
class TestDeprecatedShims:
    def test_compile_shim_warns_and_matches_session(self):
        program = build_matmul_program(32, 32, 32)
        with pytest.warns(DeprecationWarning, match="CompilationSession"):
            shimmed = MappingPipeline().compile(program)
        direct = CompilationSession(build_matmul_program(32, 32, 32)).compile()
        assert mapped_equal(shimmed, direct)

    def test_compile_with_config_shim_warns_and_matches_replay(self):
        program = build_matmul_program(32, 32, 32)
        config = Configuration.make(16, 64, {"i": 8, "j": 8, "k": 16})
        with pytest.warns(DeprecationWarning, match="replay"):
            shimmed = MappingPipeline().compile_with_config(program, config)
        session = CompilationSession(build_matmul_program(32, 32, 32))
        direct = session.replay(from_stage="tiling", config=config)
        assert mapped_equal(shimmed, direct)

    def test_pipeline_session_bridge_is_warning_free(self, recwarn):
        pipeline = MappingPipeline(options=MappingOptions(threads_per_block=64))
        session = pipeline.session(build_matmul_program(16, 16, 16))
        session.compile()
        assert not [w for w in recwarn if w.category is DeprecationWarning]


# -- autotune integration ----------------------------------------------------------
class TestAutotuneSessionReuse:
    def test_tuning_request_analyses_once(self):
        """Acceptance: one tuning request performs affine analysis once (the
        shared session), not once per evaluated candidate."""
        program = build_matmul_program(32, 32, 32)
        with counting_stage_runs() as runs:
            report = autotune(program, space_options=SMALL_SPACE)
        assert report.num_evaluations > 1
        assert runs.counts["analysis"] == 1
        # config-dependent stages ran for the seed compile + every candidate
        assert runs.counts["tiling"] >= report.num_evaluations
        assert runs.counts["tiling"] > runs.counts["analysis"]

    def test_warm_cache_hit_runs_zero_compiles_and_stages(self, tmp_path):
        program = build_matmul_program(32, 32, 32)
        cache = TuningCache(tmp_path / "cache.json")
        autotune(program, space_options=SMALL_SPACE, cache=cache)
        COMPILE_COUNTER.reset()
        with counting_stage_runs() as runs:
            warm = autotune(program, space_options=SMALL_SPACE, cache=cache)
        assert warm.from_cache
        assert COMPILE_COUNTER.count == 0
        # fingerprinting the request needs the analysis stage, nothing more
        assert set(runs.counts) <= {"analysis"}
