"""Unit tests for affine expressions, affine functions and exact linear algebra."""

from fractions import Fraction

import pytest

from repro.polyhedral import linalg
from repro.polyhedral.affine import AffineExpr, AffineFunction


class TestAffineExpr:
    def test_var_and_const(self):
        expr = AffineExpr.var("i") + 3
        assert expr.coefficient("i") == 1
        assert expr.constant == 3

    def test_zero_coefficients_dropped(self):
        expr = AffineExpr({"i": 0, "j": 2})
        assert expr.variables == ("j",)

    def test_addition_merges(self):
        expr = AffineExpr.var("i") + AffineExpr.var("i") + AffineExpr.var("j")
        assert expr.coefficient("i") == 2
        assert expr.coefficient("j") == 1

    def test_subtraction_and_negation(self):
        expr = 2 * AffineExpr.var("i") - AffineExpr.var("i")
        assert expr == AffineExpr.var("i")
        assert (-expr).coefficient("i") == -1

    def test_scalar_multiplication_and_division(self):
        expr = (AffineExpr.var("i") + 1) * 3 / 2
        assert expr.coefficient("i") == Fraction(3, 2)
        assert expr.constant == Fraction(3, 2)

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            AffineExpr.var("i") / 0

    def test_evaluate(self):
        expr = 2 * AffineExpr.var("i") + AffineExpr.var("N") - 5
        assert expr.evaluate({"i": 3, "N": 10}) == 11

    def test_evaluate_missing_raises(self):
        with pytest.raises(KeyError):
            AffineExpr.var("i").evaluate({})

    def test_substitute_partial(self):
        expr = AffineExpr.var("i") + AffineExpr.var("j")
        result = expr.substitute({"i": AffineExpr.var("k") + 1})
        assert result == AffineExpr.var("k") + AffineExpr.var("j") + 1

    def test_rename(self):
        expr = AffineExpr.var("i") - 2
        assert expr.rename({"i": "x"}) == AffineExpr.var("x") - 2

    def test_rename_merges_collisions(self):
        expr = AffineExpr.var("i") + AffineExpr.var("j")
        assert expr.rename({"j": "i"}).coefficient("i") == 2

    def test_linear_combination(self):
        expr = AffineExpr.linear_combination(["i", "j"], [2, -1], 4)
        assert expr.coefficient("j") == -1 and expr.constant == 4

    def test_linear_combination_length_mismatch(self):
        with pytest.raises(ValueError):
            AffineExpr.linear_combination(["i"], [1, 2])

    def test_hash_and_equality(self):
        assert hash(AffineExpr.var("i") + 1) == hash(1 + AffineExpr.var("i"))

    def test_depends_on(self):
        expr = AffineExpr.var("i") + AffineExpr.var("N")
        assert expr.depends_on(["N"]) and not expr.depends_on(["j"])

    def test_str_roundtrip_readable(self):
        text = str(2 * AffineExpr.var("i") - AffineExpr.var("j") + 1)
        assert "2*i" in text and "- j" in text


class TestAffineFunction:
    def test_identity(self):
        fn = AffineFunction.identity(["i", "j"])
        assert fn.apply({"i": 2, "j": 5}) == (2, 5)

    def test_rank_full(self):
        fn = AffineFunction(["i", "j"], [AffineExpr.var("i"), AffineExpr.var("j") + 1])
        assert fn.rank() == 2

    def test_rank_deficient(self):
        fn = AffineFunction(["i", "j", "k"], [AffineExpr.var("i"), AffineExpr.var("k")])
        assert fn.rank() == 2  # rank 2 < 3 input dims: order-of-magnitude reuse

    def test_parameters_excludes_inputs(self):
        fn = AffineFunction(["i"], [AffineExpr.var("i") + AffineExpr.var("N")])
        assert fn.parameters == ("N",)

    def test_from_matrix(self):
        fn = AffineFunction.from_matrix(["i", "j"], [[1, 1], [0, 1]], [0, 1])
        assert fn.apply({"i": 2, "j": 3}) == (5, 4)

    def test_compose(self):
        outer = AffineFunction(["x"], [2 * AffineExpr.var("x")])
        inner = AffineFunction(["i"], [AffineExpr.var("i") + 1])
        assert outer.compose(inner).apply({"i": 3}) == (8,)

    def test_translate(self):
        fn = AffineFunction(["i"], [AffineExpr.var("i")])
        assert fn.translate([10]).apply({"i": 12}) == (2,)

    def test_translate_length_mismatch(self):
        with pytest.raises(ValueError):
            AffineFunction(["i"], [AffineExpr.var("i")]).translate([1, 2])

    def test_rename_inputs(self):
        fn = AffineFunction(["i"], [AffineExpr.var("i") + 1]).rename_inputs({"i": "x"})
        assert fn.inputs == ("x",) and fn.apply({"x": 1}) == (2,)

    def test_drop_output_dims(self):
        fn = AffineFunction(["i"], [AffineExpr.var("i"), AffineExpr.const(0)])
        assert fn.drop_output_dims([1]).output_dim == 1


class TestLinalg:
    def test_rank(self):
        assert linalg.matrix_rank([[1, 2], [2, 4]]) == 1
        assert linalg.matrix_rank([[1, 0], [0, 1]]) == 2
        assert linalg.matrix_rank([]) == 0

    def test_nullspace_orthogonal(self):
        basis = linalg.nullspace([[1, 1, 0]])
        assert len(basis) == 2
        for vector in basis:
            assert vector[0] + vector[1] == 0

    def test_solve_consistent(self):
        solution = linalg.solve([[2, 0], [0, 3]], [4, 9])
        assert solution == [Fraction(2), Fraction(3)]

    def test_solve_inconsistent(self):
        assert linalg.solve([[1, 1], [1, 1]], [1, 2]) is None

    def test_solve_shape_mismatch(self):
        with pytest.raises(ValueError):
            linalg.solve([[1, 0]], [1, 2])

    def test_matmul(self):
        product = linalg.matmul([[1, 2]], [[3], [4]])
        assert product == [[Fraction(11)]]

    def test_matmul_dim_mismatch(self):
        with pytest.raises(ValueError):
            linalg.matmul([[1, 2]], [[1, 2]])

    def test_identity_and_integer_check(self):
        assert linalg.is_integer_matrix(linalg.identity(3))
        assert not linalg.is_integer_matrix([[Fraction(1, 2)]])
