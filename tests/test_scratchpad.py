"""Tests for the scratchpad data-management framework (paper Section 3)."""

import numpy as np
import pytest

from repro.ir import ProgramBuilder, program_to_c
from repro.runtime import run_program
from repro.scratchpad import (
    ScratchpadManager,
    ScratchpadOptions,
    allocate_local_buffer,
    build_remap_table,
    classify_copies,
    compute_reference_data_spaces,
    evaluate_reuse,
    generate_data_movement,
    partition_overlapping,
    remap_statement,
)


def fig1_program():
    """The worked example of the paper's Fig. 1."""
    b = ProgramBuilder("fig1")
    A = b.array("A", (200, 200))
    B = b.array("B", (200, 200))
    i, j, k = b.var("i"), b.var("j"), b.var("k")
    with b.loop("i", 10, 14):
        with b.loop("j", 10, 14):
            b.assign(A[i, j + 1], A[i + j, j + 1] * 3, name="S1")
            with b.loop("k", 11, 20):
                b.assign(B[i, j + k], A[i, k] + B[i + j, k], name="S2")
    return b.build()


def matmul_program(n=6):
    b = ProgramBuilder("mm")
    A = b.array("A", (n, n))
    B = b.array("B", (n, n))
    C = b.array("C", (n, n))
    i, j, k = b.var("i"), b.var("j"), b.var("k")
    with b.loop("i", 0, n - 1):
        with b.loop("j", 0, n - 1):
            with b.loop("k", 0, n - 1):
                b.assign(C[i, j], A[i, k] * B[k, j], reduction="+")
    return b.build()


class TestDataSpaces:
    def test_per_array_grouping(self):
        spaces = compute_reference_data_spaces(fig1_program().statement_list)
        assert set(spaces) == {"A", "B"}
        # write A[i][j+1] and read A[i+j][j+1] in S1, read A[i][k] in S2
        assert len(spaces["A"]) == 3

    def test_data_space_boxes(self):
        spaces = compute_reference_data_spaces(fig1_program().statement_list)
        boxes = sorted(
            tuple(s.data_space.bounding_box().values()) for s in spaces["A"]
        )
        assert ((10, 14), (11, 15)) in boxes
        assert ((20, 28), (11, 15)) in boxes
        assert ((10, 14), (11, 20)) in boxes

    def test_rank_based_reuse_flag(self):
        spaces = compute_reference_data_spaces(fig1_program().statement_list)
        ranks = {str(s.function): s.has_order_of_magnitude_reuse for s in spaces["A"]}
        # A[i][k] in the 3-deep statement has rank 2 < 3.
        assert any(ranks.values())


class TestPartitioning:
    def test_fig1_partitions(self):
        spaces = compute_reference_data_spaces(fig1_program().statement_list)
        partitions = partition_overlapping(spaces["A"])
        assert len(partitions) == 2  # rows 10–14 group and the disjoint rows 20–28 group
        sizes = sorted(len(p) for p in partitions)
        assert sizes == [1, 2]

    def test_empty_input(self):
        assert partition_overlapping([]) == []

    def test_non_overlapping_references_split(self):
        b = ProgramBuilder("split")
        A = b.array("A", (100,))
        B = b.array("B", (100,))
        i = b.var("i")
        with b.loop("i", 0, 9):
            b.assign(B[i], A[i] + A[i + 50])
        spaces = compute_reference_data_spaces(b.build().statement_list)
        assert len(partition_overlapping(spaces["A"])) == 2


class TestReuse:
    def test_rank_deficiency_beneficial(self):
        spaces = compute_reference_data_spaces(matmul_program().statement_list)
        for array in ("A", "B", "C"):
            decision = evaluate_reuse(partition_overlapping(spaces[array])[0])
            assert decision.beneficial and decision.order_of_magnitude

    def test_streaming_not_beneficial(self):
        b = ProgramBuilder("copy")
        A = b.array("A", (64,))
        B = b.array("B", (64,))
        i = b.var("i")
        with b.loop("i", 0, 63):
            b.assign(B[i], A[i] * 2)
        spaces = compute_reference_data_spaces(b.build().statement_list)
        decision = evaluate_reuse(partition_overlapping(spaces["A"])[0], param_binding={})
        assert not decision.beneficial

    def test_constant_overlap_beneficial(self):
        b = ProgramBuilder("stencil")
        A = b.array("A", (66,))
        B = b.array("B", (66,))
        i = b.var("i")
        with b.loop("i", 1, 64):
            b.assign(B[i], (A[i - 1] + A[i] + A[i + 1]) / 3)
        spaces = compute_reference_data_spaces(b.build().statement_list)
        decision = evaluate_reuse(partition_overlapping(spaces["A"])[0], param_binding={})
        assert decision.beneficial and decision.overlap_fraction > 0.3

    def test_delta_validation(self):
        spaces = compute_reference_data_spaces(matmul_program().statement_list)
        with pytest.raises(ValueError):
            evaluate_reuse(partition_overlapping(spaces["A"])[0], delta=2.0)


class TestAllocationRemapMovement:
    def _buffer_for(self, program, array_name):
        spaces = compute_reference_data_spaces(program.statement_list)
        partition = partition_overlapping(spaces[array_name])[0]
        array = partition[0].array
        return allocate_local_buffer(array, partition)

    def test_fig1_buffer_shapes_single_partition_mode(self):
        program = fig1_program()
        manager = ScratchpadManager(
            ScratchpadOptions(target="cell", single_buffer_per_array=True)
        )
        plan = manager.plan(program)
        shapes = {p.spec.local.name: p.spec.local.shape for p in plan.buffers}
        assert shapes["l_A"] == (19, 10)   # LA[19][10] in the paper
        assert shapes["l_B"] == (19, 24)   # LB[19][24] in the paper
        offsets = {p.spec.local.name: tuple(str(o) for o in p.spec.offsets) for p in plan.buffers}
        assert offsets["l_A"] == ("10", "11")

    def test_remap_produces_local_loads(self):
        program = matmul_program()
        spaces = compute_reference_data_spaces(program.statement_list)
        specs = [
            allocate_local_buffer(p[0].array, p)
            for name in spaces
            for p in partition_overlapping(spaces[name])
        ]
        table = build_remap_table(specs)
        remapped = remap_statement(program.statement_list[0], table)
        assert remapped.lhs.array.is_local
        assert all(load.array.is_local for load in remapped.rhs.loads())

    def test_movement_volumes(self):
        program = matmul_program(6)
        spec = self._buffer_for(program, "A")
        movement = generate_data_movement(spec)
        assert movement.volume_in() == 36 and movement.volume_out() == 0
        spec_c = self._buffer_for(program, "C")
        movement_c = generate_data_movement(spec_c)
        assert movement_c.volume_in() == 36 and movement_c.volume_out() == 36

    def test_copy_nodes_kinds(self):
        from repro.ir.ast import StatementNode

        spec = self._buffer_for(matmul_program(4), "C")
        movement = generate_data_movement(spec)
        kinds = {node.kind for node in movement.copy_in.walk() if isinstance(node, StatementNode)}
        assert kinds == {"copy_in"}

    def test_allocation_rejects_mixed_arrays(self):
        program = matmul_program(4)
        spaces = compute_reference_data_spaces(program.statement_list)
        partition = partition_overlapping(spaces["A"])[0]
        with pytest.raises(ValueError):
            allocate_local_buffer(program.array("B"), partition)


class TestLiveness:
    def test_input_array_needs_copy_in(self):
        program = matmul_program(4)
        classification = classify_copies(program.statement_list)
        assert classification.needs_copy_in("A")
        assert classification.needs_copy_out("C")

    def test_dead_output_skips_copy_out(self):
        program = matmul_program(4)
        classification = classify_copies(program.statement_list, live_out=["A"])
        assert not classification.needs_copy_out("C")

    def test_internal_temp_skips_copy_in(self):
        b = ProgramBuilder("tmp")
        A = b.array("A", (16,))
        T = b.array("T", (16,))
        B = b.array("B", (16,))
        i = b.var("i")
        j = b.var("j")
        with b.loop("i", 0, 15):
            b.assign(T[i], A[i] * 2, name="produce")
        with b.loop("j", 0, 15):
            b.assign(B[j], T[j] + 1, name="consume")
        classification = classify_copies(b.build().statement_list)
        assert not classification.needs_copy_in("T")
        assert classification.needs_copy_in("A")

    def test_shared_iterator_name_stays_conservative(self):
        """When producer and consumer nests reuse the same iterator name the
        analysis cannot prove ordering element-wise and keeps the copy-in."""
        b = ProgramBuilder("tmp2")
        A = b.array("A", (16,))
        T = b.array("T", (16,))
        B = b.array("B", (16,))
        i = b.var("i")
        with b.loop("i", 0, 15):
            b.assign(T[i], A[i] * 2, name="produce")
        with b.loop("i2", 0, 15):
            b.assign(B[b.var("i2")], T[b.var("i2") - 1] + 1, name="consume")
        classification = classify_copies(b.build().statement_list)
        # The consumer reads T[-1..14]; index -1 is outside the produced region,
        # so the read is upward exposed and copy-in must stay.
        assert classification.needs_copy_in("T")


class TestManagerEndToEnd:
    @pytest.mark.parametrize("single", [False, True])
    def test_fig1_semantics_preserved(self, single):
        program = fig1_program()
        manager = ScratchpadManager(
            ScratchpadOptions(target="cell", single_buffer_per_array=single)
        )
        transformed, plan = manager.apply(program)
        rng = np.random.default_rng(0)
        a0, b0 = rng.random((200, 200)), rng.random((200, 200))
        reference = run_program(program, inputs={"A": a0.copy(), "B": b0.copy()})
        staged = run_program(transformed, inputs={"A": a0.copy(), "B": b0.copy()})
        assert np.allclose(reference.data("A"), staged.data("A"))
        assert np.allclose(reference.data("B"), staged.data("B"))
        assert plan.total_footprint_bytes() > 0

    def test_gpu_policy_skips_streaming_arrays(self):
        b = ProgramBuilder("saxpy")
        X = b.array("X", (64,))
        Y = b.array("Y", (64,))
        i = b.var("i")
        with b.loop("i", 0, 63):
            b.assign(Y[i], X[i] * 2 + Y[i])
        program = b.build()
        plan = ScratchpadManager(ScratchpadOptions(target="gpu", param_binding={})).plan(program)
        # X is streamed once (no reuse) and stays in global memory; Y is both
        # read and written (overlap fraction 0.5 > delta) and gets staged.
        assert [name for name, _ in plan.skipped] == ["X"]
        assert {entry.spec.original.name for entry in plan.buffers} == {"Y"}

    def test_cell_policy_stages_everything(self):
        b = ProgramBuilder("saxpy")
        X = b.array("X", (64,))
        Y = b.array("Y", (64,))
        i = b.var("i")
        with b.loop("i", 0, 63):
            b.assign(Y[i], X[i] * 2 + Y[i])
        plan = ScratchpadManager(ScratchpadOptions(target="cell", param_binding={})).plan(b.build())
        assert len(plan.buffers) == 2

    def test_transformed_program_counts_local_accesses(self):
        program = matmul_program(5)
        transformed, _ = ScratchpadManager(ScratchpadOptions(target="cell")).apply(program)
        ctx = run_program(transformed)
        assert ctx.counters.local_reads > 0 and ctx.counters.local_writes > 0

    def test_plan_summary_mentions_buffers(self):
        plan = ScratchpadManager(ScratchpadOptions(target="cell")).plan(matmul_program(4))
        assert "buffer" in plan.summary()

    def test_transformed_c_output_declares_shared_buffers(self):
        transformed, _ = ScratchpadManager(ScratchpadOptions(target="cell")).apply(matmul_program(4))
        text = program_to_c(transformed)
        assert "__shared__" in text
