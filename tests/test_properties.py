"""Property-based tests (hypothesis) on the core data structures and invariants."""

from fractions import Fraction

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.codegen.union_scan import make_disjoint
from repro.ir import ProgramBuilder
from repro.polyhedral.affine import AffineExpr, AffineFunction
from repro.polyhedral.counting import count_integer_points, union_point_count
from repro.polyhedral.hull import rectangular_hull
from repro.polyhedral.image import image_of_polyhedron
from repro.polyhedral.polyhedron import Polyhedron
from repro.runtime import run_program
from repro.scratchpad import ScratchpadManager, ScratchpadOptions

coeffs = st.integers(min_value=-4, max_value=4)
constants = st.integers(min_value=-10, max_value=10)
names = st.sampled_from(["i", "j", "k"])


@st.composite
def affine_exprs(draw):
    terms = draw(st.dictionaries(names, coeffs, max_size=3))
    return AffineExpr(terms, draw(constants))


@st.composite
def boxes(draw, dims=("i", "j")):
    bounds = {}
    for dim in dims:
        low = draw(st.integers(min_value=-5, max_value=5))
        extent = draw(st.integers(min_value=0, max_value=6))
        bounds[dim] = (low, low + extent)
    return Polyhedron.from_bounds(bounds, dim_order=list(dims))


class TestAffineAlgebra:
    @given(affine_exprs(), affine_exprs())
    def test_addition_commutes(self, a, b):
        assert a + b == b + a

    @given(affine_exprs(), affine_exprs(), affine_exprs())
    def test_addition_associates(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(affine_exprs(), st.integers(min_value=-5, max_value=5))
    def test_scalar_distributes(self, a, s):
        assert (a + a) * s == a * s + a * s

    @given(affine_exprs(), st.dictionaries(names, constants, min_size=3, max_size=3))
    def test_evaluation_is_linear(self, a, binding):
        doubled = a * 2
        assert doubled.evaluate(binding) == 2 * a.evaluate(binding)

    @given(affine_exprs())
    def test_negation_is_involution(self, a):
        assert -(-a) == a


class TestPolyhedralInvariants:
    @settings(max_examples=25, deadline=None)
    @given(boxes(), boxes())
    def test_intersection_is_subset(self, a, b):
        inter = a.intersect(b)
        if not inter.is_empty():
            assert inter.is_subset_of(a) and inter.is_subset_of(b)

    @settings(max_examples=25, deadline=None)
    @given(boxes(), boxes())
    def test_inclusion_exclusion_on_boxes(self, a, b):
        union = union_point_count([a, b])
        assert union == count_integer_points(a) + count_integer_points(b) - count_integer_points(
            a.intersect(b)
        )

    @settings(max_examples=25, deadline=None)
    @given(boxes(), boxes())
    def test_disjoint_decomposition_preserves_union(self, a, b):
        pieces = make_disjoint([a, b])
        assert union_point_count(pieces) == union_point_count([a, b])
        for i, first in enumerate(pieces):
            for second in pieces[i + 1 :]:
                assert not first.intersects(second)

    @settings(max_examples=25, deadline=None)
    @given(boxes(dims=("i",)), st.integers(min_value=-3, max_value=3), constants)
    def test_image_count_of_injective_map_is_preserved(self, box, scale, shift):
        if scale == 0:
            scale = 1
        fn = AffineFunction(["i"], [scale * AffineExpr.var("i") + shift])
        img = image_of_polyhedron(box, fn, ["d"])
        # The rational image of a 1-D box under an injective map contains at
        # least as many integer points as the source has (equality for |scale|=1).
        if abs(scale) == 1:
            assert count_integer_points(img) == count_integer_points(box)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(boxes(), min_size=1, max_size=3))
    def test_hull_contains_every_member_point(self, members):
        hull = rectangular_hull(members)
        box = hull.evaluate_box()
        for member in members:
            for point in member.integer_points():
                for dim, value in point.items():
                    low, high = box[dim]
                    assert low <= value <= high


class TestTransformationInvariant:
    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=3, max_value=8),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=2),
    )
    def test_scratchpad_transformation_preserves_stencil_semantics(self, n, radius_seed, offset):
        """For random small stencils, the staged program equals the original."""
        builder = ProgramBuilder("prop_stencil")
        size = n + 2 * radius_seed + offset + 2
        a = builder.array("A", (size,))
        b = builder.array("B", (size,))
        i = builder.var("i")
        with builder.loop("i", radius_seed, radius_seed + n - 1):
            builder.assign(b[i + offset], a[i - radius_seed] + a[i + radius_seed])
        program = builder.build()
        manager = ScratchpadManager(ScratchpadOptions(target="cell"))
        transformed, _ = manager.apply(program)
        data = np.random.default_rng(n).random(size)
        reference = run_program(program, inputs={"A": data.copy(), "B": np.zeros(size)})
        staged = run_program(transformed, inputs={"A": data.copy(), "B": np.zeros(size)})
        assert np.allclose(reference.data("B"), staged.data("B"))
