"""Tests of the ``repro.autotune`` subsystem (space, search, cache, session)."""

from __future__ import annotations

import json
import warnings

import numpy as np
import pytest

from repro import COMPILE_COUNTER, MappingOptions, MappingPipeline, autotune
from repro.autotune import (
    Configuration,
    ConfigurationEvaluator,
    ConfigurationSpace,
    EvaluationResult,
    ExhaustiveSearch,
    PrunedGridSearch,
    RandomHillClimbSearch,
    SpaceOptions,
    TuningCache,
    TuningJob,
    TuningReport,
    autotune_batch,
    best_result,
    fingerprint,
    resolve_strategy,
)
from repro.autotune.cli import main as cli_main
from repro.kernels import build_matmul_program, get_kernel
from repro.machine import GEFORCE_8800_GTX

SMALL_SPACE = SpaceOptions(
    thread_counts=(64,), block_counts=(16,), tile_candidates_per_geometry=2
)
GRID_SPACE = SpaceOptions(
    thread_counts=(64, 128), block_counts=(16, 32), tile_candidates_per_geometry=2
)


@pytest.fixture(scope="module")
def matmul():
    return build_matmul_program(32, 32, 32)


# -- configuration -----------------------------------------------------------------
class TestConfiguration:
    def test_round_trips_through_dict(self):
        config = Configuration.make(32, 128, {"i": 8, "j": 16}, use_scratchpad=False)
        assert Configuration.from_dict(config.to_dict()) == config

    def test_key_is_stable_and_readable(self):
        config = Configuration.make(32, 128, {"j": 16, "i": 8})
        assert config.key() == "b32.t128.i8_j16.spm"

    def test_to_options_carries_base_policy(self):
        base = MappingOptions(delta=0.25, liveness=True)
        options = Configuration.make(8, 64, {"i": 4}).to_options(base)
        assert options.num_blocks == 8
        assert options.threads_per_block == 64
        assert options.tile_sizes == {"i": 4}
        assert options.delta == 0.25 and options.liveness is True


# -- space -------------------------------------------------------------------------
class TestConfigurationSpace:
    def test_seed_configuration_matches_pipeline_choice(self, matmul):
        space = ConfigurationSpace(matmul, space_options=SMALL_SPACE)
        seed = space.seed_configuration()
        mapped = MappingPipeline().compile(matmul)
        assert seed.tile_dict == mapped.tile_sizes
        assert seed.num_blocks == 32 and seed.threads_per_block == 256

    def test_enumerate_starts_with_seed_and_prunes(self, matmul):
        space = ConfigurationSpace(matmul, space_options=GRID_SPACE)
        configs = space.enumerate()
        assert configs[0] == space.seed_configuration()
        assert len(configs) == len(set(configs))
        for config in configs[1:]:
            model = space.cost_model(config.num_blocks, config.threads_per_block)
            sizes = config.tile_dict
            assert model.work_per_tile(sizes) >= config.threads_per_block
            assert model.footprint_bytes(sizes) <= space.memory_limit(config.num_blocks)

    def test_neighbours_are_feasible_one_knob_moves(self, matmul):
        space = ConfigurationSpace(matmul, space_options=GRID_SPACE)
        config = space.enumerate()[1]
        for neighbour in space.neighbours(config):
            assert neighbour != config
            model = space.cost_model(neighbour.num_blocks, neighbour.threads_per_block)
            assert model.work_per_tile(neighbour.tile_dict) >= neighbour.threads_per_block


# -- evaluation --------------------------------------------------------------------
class TestEvaluator:
    def test_infeasible_configuration_is_reported_not_raised(self):
        program = build_matmul_program(64, 64, 64)
        evaluator = ConfigurationEvaluator(program)
        # A giant tile cannot fit any block in the 16 KB scratchpad.
        result = evaluator.evaluate(Configuration.make(1, 64, {"i": 64, "j": 64, "k": 64}))
        assert not result.feasible
        assert result.error
        assert result.time_ms == float("inf")

    def test_spot_check_confirms_correct_mapping(self):
        kernel = get_kernel("matmul")
        program = kernel.build_check()
        evaluator = ConfigurationEvaluator(program, check_correctness=True, seed=3)
        result = evaluator.evaluate(Configuration.make(4, 16, {"i": 4, "j": 4, "k": 8}))
        assert result.feasible
        assert result.correct is True

    def test_best_result_breaks_ties_on_key(self):
        tie = lambda tiles: EvaluationResult(
            configuration=Configuration.make(16, 64, tiles),
            time_ms=1.0, cycles=1350.0, feasible=True,
        )
        winner = best_result([tie({"i": 8}), tie({"i": 4})])
        assert winner.configuration.tile_dict == {"i": 4}

    def test_best_result_never_returns_a_failed_spot_check(self):
        fast_but_wrong = EvaluationResult(
            configuration=Configuration.make(16, 64, {"i": 4}),
            time_ms=0.5, cycles=675.0, feasible=True, correct=False,
        )
        slow_but_right = EvaluationResult(
            configuration=Configuration.make(16, 64, {"i": 8}),
            time_ms=2.0, cycles=2700.0, feasible=True, correct=True,
        )
        winner = best_result([fast_but_wrong, slow_but_right])
        assert winner.configuration.tile_dict == {"i": 8}

    def test_no_feasible_result_raises(self):
        infeasible = EvaluationResult(
            configuration=Configuration.make(1, 64, {"i": 64}),
            time_ms=float("inf"), cycles=float("inf"), feasible=False,
        )
        with pytest.raises(ValueError):
            best_result([infeasible])


# -- session / acceptance ----------------------------------------------------------
class TestAutotuneSession:
    def test_best_not_worse_than_seed_pipeline_default(self, matmul):
        report = autotune(matmul, space_options=GRID_SPACE)
        assert report.best.feasible
        assert report.best.cycles <= report.baseline.cycles
        assert report.best.time_ms <= report.baseline.time_ms
        assert report.speedup_over_baseline >= 1.0

    def test_cache_miss_when_correctness_check_requested(self, tmp_path):
        program = build_matmul_program(8, 8, 8)
        cache = TuningCache(tmp_path / "cache.json")
        unchecked = autotune(program, space_options=SMALL_SPACE, cache=cache)
        checked = autotune(
            program, space_options=SMALL_SPACE, cache=cache, check_correctness=True
        )
        assert not checked.from_cache  # a report without spot-checks must not satisfy it
        assert checked.fingerprint != unchecked.fingerprint
        assert checked.best.correct is True

    def test_warm_cache_round_trip_zero_compiles(self, matmul, tmp_path):
        path = tmp_path / "cache.json"
        cold = autotune(matmul, space_options=SMALL_SPACE, cache=TuningCache(path))
        assert not cold.from_cache

        COMPILE_COUNTER.reset()
        warm = autotune(matmul, space_options=SMALL_SPACE, cache=TuningCache(path))
        assert COMPILE_COUNTER.count == 0
        assert warm.from_cache
        assert warm.to_dict() == cold.to_dict()

    def test_parallel_report_identical_to_serial(self, matmul):
        serial = autotune(matmul, space_options=GRID_SPACE, max_workers=1)
        parallel = autotune(matmul, space_options=GRID_SPACE, max_workers=4)
        assert parallel.to_dict() == serial.to_dict()

    def test_process_pool_report_identical_to_serial(self, matmul):
        serial = autotune(matmul, space_options=SMALL_SPACE, max_workers=1)
        processes = autotune(
            matmul, space_options=SMALL_SPACE, max_workers=2, executor="process"
        )
        assert processes.to_dict() == serial.to_dict()

    def test_unpicklable_evaluator_falls_back_to_threads(self, matmul):
        from repro.autotune import make_batch_evaluator
        from repro.autotune.space import ConfigurationSpace

        evaluator = ConfigurationEvaluator(matmul)
        evaluator.poison = lambda: None  # lambdas cannot pickle
        with pytest.warns(RuntimeWarning, match="falling back to threads"):
            batch = make_batch_evaluator(evaluator, max_workers=2, executor="process")
        assert batch.executor == "thread"
        space = ConfigurationSpace(matmul, space_options=SMALL_SPACE)
        with batch:
            results = batch([space.seed_configuration()])
        assert len(results) == 1 and results[0].feasible

    def test_hillclimb_is_seeded_and_parallel_safe(self, matmul):
        strategy = RandomHillClimbSearch(seed=11, restarts=1, max_steps=1)
        one = autotune(matmul, space_options=SMALL_SPACE, strategy=strategy, max_workers=1)
        two = autotune(matmul, space_options=SMALL_SPACE, strategy=strategy, max_workers=3)
        assert one.to_dict() == two.to_dict()
        assert one.strategy == "hillclimb"

    def test_exhaustive_covers_at_least_the_pruned_grid(self):
        program = build_matmul_program(16, 16, 16)
        pruned = autotune(program, space_options=SMALL_SPACE, strategy="pruned")
        exhaustive = autotune(program, space_options=SMALL_SPACE, strategy="exhaustive")
        assert exhaustive.num_evaluations >= pruned.num_evaluations
        assert exhaustive.best.time_ms <= pruned.best.time_ms

    def test_best_configuration_replays_through_pipeline(self, matmul):
        report = autotune(matmul, space_options=SMALL_SPACE)
        mapped = MappingPipeline().compile_with_config(matmul, report.best.configuration)
        assert mapped.tile_sizes == report.best.configuration.tile_dict
        assert mapped.tile_search is None  # the search never ran on replay

    def test_batch_tunes_many_problem_sizes_with_shared_cache(self, tmp_path):
        cache = TuningCache(tmp_path / "batch.json")
        jobs = [
            TuningJob(build_matmul_program(32, 32, 32), label="small"),
            TuningJob(build_matmul_program(64, 64, 64), label="large"),
        ]
        reports = autotune_batch(jobs, cache=cache, space_options=SMALL_SPACE)
        assert [r.kernel_name for r in reports] == ["small", "large"]
        assert len(cache) == 2
        warm = autotune_batch(jobs, cache=TuningCache(tmp_path / "batch.json"),
                              space_options=SMALL_SPACE)
        assert all(r.from_cache for r in warm)

    def test_report_dict_round_trip(self, matmul):
        report = autotune(matmul, space_options=SMALL_SPACE)
        clone = TuningReport.from_dict(json.loads(json.dumps(report.to_dict())))
        assert clone.best.to_dict() == report.best.to_dict()
        assert clone.fingerprint == report.fingerprint

    def test_invalid_inputs_rejected(self, matmul):
        with pytest.raises(ValueError):
            autotune(matmul, max_workers=0)
        with pytest.raises(ValueError, match="executor"):
            autotune(matmul, executor="mpi")
        with pytest.raises(ValueError):
            resolve_strategy("simulated-annealing")
        with pytest.raises(TypeError):
            resolve_strategy(42)


# -- cache -------------------------------------------------------------------------
class TestTuningCache:
    def test_fingerprint_sensitive_to_every_input(self, matmul):
        base = fingerprint(matmul, GEFORCE_8800_GTX, None, MappingOptions(),
                           {"name": "pruned"}, {"space": 1})
        other_program = build_matmul_program(16, 16, 16)
        assert fingerprint(other_program, GEFORCE_8800_GTX, None, MappingOptions(),
                           {"name": "pruned"}, {"space": 1}) != base
        assert fingerprint(matmul, GEFORCE_8800_GTX, None,
                           MappingOptions(threads_per_block=128),
                           {"name": "pruned"}, {"space": 1}) != base
        assert fingerprint(matmul, GEFORCE_8800_GTX, None, MappingOptions(),
                           {"name": "exhaustive"}, {"space": 1}) != base
        assert fingerprint(matmul, GEFORCE_8800_GTX, None, MappingOptions(),
                           {"name": "pruned"}, {"space": 2}) != base
        # and stable across calls
        assert fingerprint(matmul, GEFORCE_8800_GTX, None, MappingOptions(),
                           {"name": "pruned"}, {"space": 1}) == base

    def test_persistence_across_instances(self, tmp_path):
        path = tmp_path / "cache.json"
        first = TuningCache(path)
        first.put("k", {"value": 1})
        second = TuningCache(path)
        assert second.get("k") == {"value": 1}
        assert second.stats()["hits"] == 1

    def test_concurrent_instances_merge_instead_of_clobbering(self, tmp_path):
        path = tmp_path / "cache.json"
        a = TuningCache(path)  # both load the (empty) file before either writes
        b = TuningCache(path)
        a.put("ka", {"v": "a"})
        b.put("kb", {"v": "b"})
        merged = TuningCache(path)
        assert merged.get("ka") == {"v": "a"}
        assert merged.get("kb") == {"v": "b"}

    def test_corrupt_file_means_cold_cache(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{ not json")
        cache = TuningCache(path)
        assert len(cache) == 0
        assert cache.get("missing") is None
        assert cache.misses == 1

    def test_version_mismatch_discards_entries(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps({"version": 999, "entries": {"k": {"v": 1}}}))
        assert len(TuningCache(path)) == 0

    def test_in_memory_cache_needs_no_path(self):
        cache = TuningCache()
        cache.put("k", {"v": 2})
        assert cache.get("k") == {"v": 2}
        cache.clear()
        assert len(cache) == 0

    def test_stats_reports_entries_bytes_and_counters(self, tmp_path):
        cache = TuningCache(tmp_path / "cache.json")
        fresh = cache.stats()
        assert fresh["backend"] == "json"
        assert fresh["entries"] == 0 and fresh["bytes"] == 0
        assert fresh["hits"] == 0 and fresh["misses"] == 0
        cache.put("k", {"v": 1})
        cache.get("k")
        cache.get("missing")
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["bytes"] == (tmp_path / "cache.json").stat().st_size
        assert stats["bytes"] > 0
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_prune_keeps_the_newest_entries(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = TuningCache(path)
        for i in range(5):
            cache.put(f"k{i}", {"v": i})
        assert cache.prune(2) == 3
        assert cache.prune(2) == 0  # already within bounds
        # pruned entries stay gone on reload: the save skipped the read-merge
        reloaded = TuningCache(path)
        assert len(reloaded) == 2
        assert reloaded.get("k3") == {"v": 3} and reloaded.get("k4") == {"v": 4}
        with pytest.raises(ValueError):
            cache.prune(-1)

    def test_prune_order_survives_the_file_round_trip(self, tmp_path):
        # keys deliberately in anti-alphabetical insertion order: "oldest"
        # must mean insertion order even after a save/load cycle
        path = tmp_path / "cache.json"
        cache = TuningCache(path)
        cache.put("zz-oldest", {"v": 0})
        cache.put("aa-newest", {"v": 1})
        reloaded = TuningCache(path)
        assert reloaded.prune(1) == 1
        assert reloaded.peek("aa-newest") == {"v": 1}
        assert reloaded.peek("zz-oldest") is None

    def test_peek_does_not_touch_counters(self):
        cache = TuningCache()
        cache.put("k", {"v": 1})
        assert cache.peek("k") == {"v": 1}
        assert cache.peek("missing") is None
        assert cache.stats()["hits"] == 0 and cache.stats()["misses"] == 0

    def test_absorb_stores_in_memory_without_persisting(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = TuningCache(path)
        cache.absorb("k", {"v": 1})
        assert cache.get("k") == {"v": 1}
        assert not path.exists()

    def test_absorb_overlay_is_lru_bounded(self, tmp_path):
        """A long-lived server's overlay must not grow without bound.

        Uses the sharded store (the documented busy-server backend): its
        per-fingerprint files are re-read on demand, so an entry evicted from
        the overlay remains served from disk.
        """
        spec = f"dir:{tmp_path / 'cache-dir'}"
        cache = TuningCache(spec, absorb_limit=2)
        producer = TuningCache(spec)
        for i in range(4):
            producer.put(f"k{i}", {"v": i})  # "another process" persists...
            cache.absorb(f"k{i}", {"v": i})  # ...and this instance absorbs
        stats = cache.stats()
        assert stats["absorbed"] == 2
        assert stats["absorb_limit"] == 2
        assert stats["entries"] == 4
        # evicted entries are still served — from the backing store
        assert cache.get("k0") == {"v": 0}
        assert cache.get("k3") == {"v": 3}

    def test_absorb_overlay_evicts_least_recently_used(self, tmp_path):
        cache = TuningCache(tmp_path / "cache.json", absorb_limit=2)
        cache.absorb("a", {"v": "a"})
        cache.absorb("b", {"v": "b"})
        cache.get("a")  # refresh "a": "b" becomes the eviction candidate
        cache.absorb("c", {"v": "c"})
        assert set(cache._absorbed) == {"a", "c"}
        # "b" was never persisted locally and the producer is gone: evicting
        # it means a miss, which is why eviction picks the LRU entry
        assert cache.get("b") is None

    def test_absorb_limit_validation(self, tmp_path):
        with pytest.raises(ValueError, match="absorb_limit"):
            TuningCache(tmp_path / "cache.json", absorb_limit=-1)

    def test_missing_fcntl_warns_once_per_process(self, tmp_path, monkeypatch):
        from repro.autotune import store as store_module

        monkeypatch.setattr(store_module, "fcntl", None)
        monkeypatch.setattr(store_module, "_warned_unlocked", False)
        cache = TuningCache(tmp_path / "cache.json")
        with pytest.warns(RuntimeWarning, match="without inter-process file locking"):
            cache.put("a", {"v": 1})
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second write must stay silent
            cache.put("b", {"v": 2})


# -- options / pipeline satellites -------------------------------------------------
class TestOptionValidation:
    def test_rejects_non_positive_tile_sizes(self):
        with pytest.raises(ValueError, match="tile size"):
            MappingOptions(tile_sizes={"i": 0})
        with pytest.raises(ValueError, match="tile size"):
            MappingOptions(tile_sizes={"i": -4})
        with pytest.raises(ValueError, match="tile size"):
            MappingOptions(tile_sizes={"i": 2.5})

    def test_rejects_bad_counts_and_target(self):
        with pytest.raises(ValueError):
            MappingOptions(num_blocks=0)
        with pytest.raises(ValueError):
            MappingOptions(threads_per_block=-1)
        with pytest.raises(ValueError):
            MappingOptions(num_blocks=True)
        with pytest.raises(ValueError):
            MappingOptions(threads_per_block=True)
        with pytest.raises(ValueError, match="target"):
            MappingOptions(target="fpga")

    def test_options_dict_round_trip(self):
        options = MappingOptions(num_blocks=8, tile_sizes={"i": 4}, delta=0.5)
        assert MappingOptions.from_dict(options.to_dict()) == options
        with pytest.raises(ValueError, match="unknown"):
            MappingOptions.from_dict({"warp_size": 32})


# -- CLI ---------------------------------------------------------------------------
class TestCli:
    def test_list_kernels(self, capsys):
        assert cli_main(["--list-kernels"]) == 0
        out = capsys.readouterr().out
        assert "matmul" in out and "jacobi1d" in out

    def test_unknown_kernel_fails_cleanly(self, capsys):
        assert cli_main(["no_such_kernel"]) == 2
        assert "unknown kernel" in capsys.readouterr().err

    def test_tune_and_warm_cache(self, tmp_path, capsys):
        cache = str(tmp_path / "cli-cache.json")
        args = ["matmul", "--size", "m=32", "n=32", "k=32", "--cache", cache,
                "--top", "2", "--threads", "64", "--blocks", "16"]
        assert cli_main(args) == 0
        cold_out = capsys.readouterr().out
        assert "pipeline compiles this call: 0" not in cold_out
        assert cli_main(args) == 0
        warm_out = capsys.readouterr().out
        assert "pipeline compiles this call: 0" in warm_out
        assert "[cache]" in warm_out

    def test_cache_stats_subcommand(self, tmp_path, capsys):
        path = str(tmp_path / "cache.json")
        cache = TuningCache(path)
        for i in range(3):
            cache.put(f"k{i}", {"v": i})
        assert cli_main(["cache-stats", "--cache", path]) == 0
        out = capsys.readouterr().out
        assert "entries: 3" in out
        assert "bytes: " in out

    def test_cache_prune_subcommand(self, tmp_path, capsys):
        path = str(tmp_path / "cache.json")
        cache = TuningCache(path)
        for i in range(5):
            cache.put(f"k{i}", {"v": i})
        assert cli_main(["cache-prune", "--cache", path, "--max-entries", "2"]) == 0
        assert "pruned 3 entries; 2 remain" in capsys.readouterr().out
        assert len(TuningCache(path)) == 2
        assert cli_main(["cache-prune", "--cache", path, "--max-entries", "-1"]) == 2
