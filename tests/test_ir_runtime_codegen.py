"""Tests for the IR (arrays, expressions, statements, builder, printer), the
reference interpreter, the Python emitter and the CLooG-substitute scanners."""

import numpy as np
import pytest

from repro.codegen import compile_to_python, emit_c, scan_polyhedron, scan_union
from repro.codegen.union_scan import make_disjoint, subtract
from repro.ir import (
    Array,
    BlockNode,
    GuardNode,
    LoopNode,
    ProgramBuilder,
    StatementNode,
    SyncNode,
    absolute,
    ast_to_c,
    program_to_c,
)
from repro.ir.ast import evaluate_bound
from repro.ir.expressions import Const, Iter, Load
from repro.polyhedral.affine import AffineExpr
from repro.polyhedral.constraints import Constraint
from repro.polyhedral.counting import union_point_count
from repro.polyhedral.parametric import QuasiAffineBound
from repro.polyhedral.polyhedron import Polyhedron
from repro.runtime import run_program


def build_stencil(n=20):
    b = ProgramBuilder("stencil", params=["N"])
    N = b.param("N")
    a = b.array("A", (n + 2,))
    out = b.array("B", (n + 2,))
    i = b.var("i")
    with b.loop("i", 1, N):
        b.assign(out[i], (a[i - 1] + a[i] + a[i + 1]) / 3, name="S")
    b.set_default_params(N=n)
    return b.build()


class TestArrays:
    def test_basic_properties(self):
        arr = Array("A", (4, 5))
        assert arr.ndim == 2 and not arr.is_local
        assert arr.concrete_shape() == (4, 5)
        assert arr.footprint_bytes() == 4 * 5 * 4

    def test_symbolic_shape(self):
        arr = Array("A", (AffineExpr.var("N") + 2,))
        assert arr.concrete_shape({"N": 10}) == (12,)

    def test_invalid_memory(self):
        with pytest.raises(ValueError):
            Array("A", (4,), memory="weird")

    def test_indexing_builds_load(self):
        arr = Array("A", (4, 4))
        load = arr[AffineExpr.var("i"), AffineExpr.var("j") + 1]
        assert isinstance(load, Load) and len(load.indices) == 2

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            Array("A", (4, 4))[AffineExpr.var("i")]


class TestExpressions:
    def test_arithmetic_and_eval(self):
        class Env:
            def read(self, array, idx):
                return 2.0

        arr = Array("A", (4,))
        expr = arr[AffineExpr.var("i")] * 3 + 1
        assert expr.evaluate(Env(), {"i": 0}) == 7.0

    def test_loads_collected(self):
        arr = Array("A", (4,))
        expr = arr[AffineExpr.var("i")] + arr[AffineExpr.var("i") + 1]
        assert len(expr.loads()) == 2

    def test_map_loads_rewrites(self):
        arr = Array("A", (4,))
        other = Array("L", (4,), memory="local")
        expr = arr[AffineExpr.var("i")] + 1
        rewritten = expr.map_loads(lambda load: Load(other, load.indices))
        assert rewritten.loads()[0].array.name == "L"

    def test_intrinsics(self):
        assert absolute(Const(-3)).evaluate(None, {}) == 3
        assert Iter("i").evaluate(None, {"i": 5}) == 5

    def test_unknown_intrinsic_rejected(self):
        from repro.ir.expressions import Call

        with pytest.raises(ValueError):
            Call("cosh", (Const(1),))


class TestBuilderAndProgram:
    def test_statement_domain_matches_loops(self):
        prog = build_stencil()
        stmt = prog.statement("S")
        assert stmt.domain.dims == ("i",)
        assert stmt.domain.params == ("N",)

    def test_duplicate_iterator_rejected(self):
        b = ProgramBuilder("p")
        b.array("A", (4,))
        with pytest.raises(ValueError):
            with b.loop("i", 0, 3):
                with b.loop("i", 0, 3):
                    pass

    def test_validation_catches_unscheduled_statement(self):
        prog = build_stencil()
        from repro.ir.statements import Statement

        orphan = prog.statement("S")
        prog.statements["orphan"] = Statement(
            name="orphan", domain=orphan.domain, lhs=orphan.lhs, rhs=orphan.rhs
        )
        with pytest.raises(ValueError):
            prog.validate()

    def test_printer_produces_c_like_text(self):
        text = program_to_c(build_stencil())
        assert "for (i = 1; i <= N; i++)" in text and "B[i]" in text

    def test_references_and_ranks(self):
        prog = build_stencil()
        stmt = prog.statement("S")
        assert len(stmt.read_references()) == 3
        assert stmt.write_reference().rank == 1


class TestASTHelpers:
    def test_evaluate_bound_rounding(self):
        assert evaluate_bound(AffineExpr.var("N") / 2, {"N": 5}, is_lower=True) == 3
        assert evaluate_bound(AffineExpr.var("N") / 2, {"N": 5}, is_lower=False) == 2
        assert evaluate_bound(QuasiAffineBound("min", (AffineExpr.var("N"), AffineExpr.const(3))), {"N": 10}, is_lower=False) == 3

    def test_loop_trip_count(self):
        loop = LoopNode("i", 0, 9, BlockNode(), step=2)
        assert loop.trip_count({}) == 5

    def test_guard_and_sync_validation(self):
        guard = GuardNode((Constraint.greater_equal(AffineExpr.var("i"), 0),), BlockNode())
        assert guard.holds_at({"i": 1}) and not guard.holds_at({"i": -1})
        with pytest.raises(ValueError):
            SyncNode(scope="universe")

    def test_statement_kind_validation(self):
        prog = build_stencil()
        with pytest.raises(ValueError):
            StatementNode(prog.statement("S"), kind="weird")


class TestRuntimeAndEmitter:
    def test_interpreter_matches_numpy(self):
        prog = build_stencil(16)
        a = np.arange(18, dtype=np.float64)
        ctx = run_program(prog, inputs={"A": a, "B": np.zeros(18)})
        expected = np.zeros(18)
        expected[1:17] = (a[0:16] + a[1:17] + a[2:18]) / 3
        assert np.allclose(ctx.data("B"), expected)

    def test_counters(self):
        prog = build_stencil(8)
        ctx = run_program(prog, inputs={"A": np.zeros(10), "B": np.zeros(10)})
        counters = ctx.counters.summary()
        assert counters["statement_instances"] == 8
        assert counters["global_reads"] == 24 and counters["global_writes"] == 8

    def test_emitted_python_matches_interpreter(self):
        prog = build_stencil(12)
        a = np.random.default_rng(0).random(14)
        ctx = run_program(prog, inputs={"A": a.copy(), "B": np.zeros(14)})
        fn = compile_to_python(prog)
        arrays = {"A": a.copy(), "B": np.zeros(14)}
        fn(arrays, {"N": 12})
        assert np.allclose(arrays["B"], ctx.data("B"))

    def test_reduction_execution(self):
        b = ProgramBuilder("acc")
        x = b.array("X", (4,))
        s = b.array("S", (1,))
        i = b.var("i")
        with b.loop("i", 0, 3):
            b.assign(s[AffineExpr.const(0)], x[i], reduction="+")
        prog = b.build()
        ctx = run_program(prog, inputs={"X": np.array([1.0, 2, 3, 4]), "S": np.zeros(1)})
        assert ctx.data("S")[0] == 10

    def test_out_of_bounds_read_raises(self):
        b = ProgramBuilder("oob")
        x = b.array("X", (4,))
        y = b.array("Y", (4,))
        i = b.var("i")
        with b.loop("i", 0, 3):
            b.assign(y[i], x[i + 2])
        with pytest.raises(IndexError):
            run_program(b.build())


class TestScanners:
    def test_scan_single_polyhedron_visits_all_points(self):
        poly = Polyhedron.from_bounds({"x": (0, 3), "y": (0, 2)})
        nest, innermost = __import__("repro.codegen.scan", fromlist=["loop_nest_for"]).loop_nest_for(poly)
        assert isinstance(nest, LoopNode)
        text = ast_to_c(nest)
        assert "x = 0" in text and "y = 0" in text

    def test_subtract_disjoint(self):
        a = Polyhedron.from_bounds({"x": (0, 5)})
        b = Polyhedron.from_bounds({"x": (2, 3)})
        pieces = subtract(a, b)
        assert union_point_count(pieces) == 4

    def test_make_disjoint_preserves_union(self):
        a = Polyhedron.from_bounds({"x": (0, 5), "y": (0, 5)})
        b = Polyhedron.from_bounds({"x": (3, 8), "y": (2, 7)})
        pieces = make_disjoint([a, b])
        assert union_point_count(pieces) == union_point_count([a, b]) == 60
        for idx, first in enumerate(pieces):
            for second in pieces[idx + 1 :]:
                assert not first.intersects(second)

    def test_scan_union_single_visit(self):
        a = Polyhedron.from_bounds({"x": (0, 5)})
        b = Polyhedron.from_bounds({"x": (3, 8)})
        block = scan_union([a, b], lambda piece: BlockNode([]))
        text = ast_to_c(block)
        assert text.count("for (") == 2

    def test_emit_c_header(self):
        prog = build_stencil(4)
        text = emit_c(prog, header="kernel: stencil")
        assert text.startswith("/* kernel: stencil */")
