"""Matrix multiplication: the tile-size search and scratchpad staging.

Runs Algorithm 1/2 and the Section-4.3 tile-size search on a matmul kernel,
showing how the scratchpad capacity constrains the chosen tiles, and verifies
the staged program functionally.

Run with:  python examples/matmul_scratchpad.py
"""

import numpy as np

from repro import run_program
from repro.kernels import build_matmul_program
from repro.machine import GEFORCE_8800_GTX
from repro.scratchpad import ScratchpadManager, ScratchpadOptions
from repro.tiling.cost_model import DataMovementCostModel
from repro.tiling.tile_search import TileSearchProblem, search_tile_sizes


def staging_demo() -> None:
    print("== scratchpad staging of a small matmul ==")
    program = build_matmul_program(12, 12, 12)
    manager = ScratchpadManager(ScratchpadOptions(target="gpu", param_binding={}))
    staged, plan = manager.apply(program)
    print(plan.summary())

    rng = np.random.default_rng(0)
    a, b = rng.random((12, 12)), rng.random((12, 12))
    reference = run_program(program, inputs={"A": a, "B": b, "C": np.zeros((12, 12))})
    transformed = run_program(staged, inputs={"A": a, "B": b, "C": np.zeros((12, 12))})
    assert np.allclose(reference.data("C"), transformed.data("C"))
    assert np.allclose(reference.data("C"), a @ b)
    print("staged matmul verified against numpy\n")


def tile_search_demo() -> None:
    print("== Section-4.3 tile-size search for a 512x512x512 matmul ==")
    program = build_matmul_program(512, 512, 512)
    model = DataMovementCostModel(
        program=program,
        tile_loops=["i", "j", "k"],
        loop_extents={"i": 512, "j": 512, "k": 512},
        threads=128,
        sync_cost=GEFORCE_8800_GTX.block_sync_cycles,
        transfer_cost=GEFORCE_8800_GTX.dma_cycles_per_element,
    )
    for limit_kb in (4, 8, 16):
        result = search_tile_sizes(
            TileSearchProblem(
                cost_model=model,
                memory_limit_bytes=limit_kb * 1024,
                min_parallelism=128,
            )
        )
        print(f"  scratchpad limit {limit_kb:2d} KB -> {result}")


if __name__ == "__main__":
    staging_demo()
    tile_search_demo()
