"""MPEG-4 motion estimation mapped onto the modelled GPU (paper Figs. 2–4, 6).

Compiles the ME kernel with the full pipeline (bands → multi-level tiling →
scratchpad management), verifies the mapped program functionally at a small
size, then prices the paper's configurations (with/without scratchpad, the
Fig. 6 tile-size sweep) on the machine model.

Run with:  python examples/mpeg4_motion_estimation.py
"""

import numpy as np

from repro import CompilationSession, MappingOptions, run_program, simulate_cpu, simulate_gpu
from repro.kernels import ME_PROBLEM_SIZES, MEWorkloadModel, build_me_program


def compile_and_verify() -> None:
    print("== compiling a small ME instance end-to-end ==")
    program = build_me_program(16, 16, window=4)
    options = MappingOptions(
        num_blocks=4, threads_per_block=16, tile_sizes={"i": 8, "j": 8, "k": 4, "l": 4}
    )
    mapped = CompilationSession(program, options=options).compile()
    print(mapped.plan.summary())
    print(f"launch geometry: {mapped.geometry}")

    rng = np.random.default_rng(0)
    cur, ref = rng.random((20, 20)), rng.random((20, 20))
    reference = run_program(program, inputs={"Cur": cur, "Ref": ref})
    transformed = run_program(mapped.program, inputs={"Cur": cur, "Ref": ref})
    assert np.allclose(reference.data("SAD"), transformed.data("SAD"))
    print("mapped kernel verified against the original program\n")


def price_paper_configurations() -> None:
    print("== Fig. 4-style comparison (modelled milliseconds) ==")
    tile = (32, 16, 16, 16)
    for label in ("1M", "4M", "16M"):
        height, width = ME_PROBLEM_SIZES[label]
        model = MEWorkloadModel(height, width, num_blocks=32, threads_per_block=256)
        spm = simulate_gpu("spm", model.block_workload(tile, True), model.geometry(tile, True))
        dram = simulate_gpu("dram", model.block_workload(tile, False), model.geometry(tile, False))
        cpu = simulate_cpu("cpu", model.cpu_workload())
        print(
            f"  {label:>4}: scratchpad {spm.time_ms:8.1f} ms | "
            f"no-scratchpad {dram.time_ms:8.1f} ms | CPU {cpu.time_ms:10.1f} ms | "
            f"speedups {dram.time_ms / spm.time_ms:4.1f}x / {cpu.time_ms / spm.time_ms:6.0f}x"
        )

    print("\n== Fig. 6-style tile-size sweep at 16M pixels ==")
    height, width = ME_PROBLEM_SIZES["16M"]
    model = MEWorkloadModel(height, width, num_blocks=32, threads_per_block=256)
    for tile in [(8, 8, 16, 16), (16, 16, 16, 16), (32, 16, 16, 16), (32, 32, 16, 16)]:
        if model.subtile_footprint_bytes(tile) > 16 * 1024:
            print(f"  tile {tile}: exceeds the 16 KB scratchpad, skipped")
            continue
        report = simulate_gpu("tile", model.block_workload(tile, True), model.geometry(tile, True))
        print(f"  tile {tile}: {report.time_ms:8.1f} ms")


if __name__ == "__main__":
    compile_and_verify()
    price_paper_configurations()
