"""Empirical autotuning of matmul with a persistent compilation cache.

Tunes the mapping of a matmul kernel over the model-pruned configuration
space (Section 4.3 used as a pruning device, final pick empirical), shows the
parallel-evaluation path producing the identical report, and demonstrates the
warm-cache fast path: the second request performs zero pipeline compiles.

Run with:  python examples/autotune_matmul.py
"""

import tempfile
from pathlib import Path

from repro import COMPILE_COUNTER, TuningCache, autotune
from repro.autotune import SpaceOptions
from repro.kernels import get_kernel

SEED = 0


def main() -> None:
    kernel = get_kernel("matmul")
    program = kernel.build(m=128, n=128, k=128)
    space = SpaceOptions(
        thread_counts=(64, 128, 256),
        block_counts=(16, 32),
        tile_candidates_per_geometry=3,
    )

    print("== cold tuning run (parallel evaluation, 4 workers) ==")
    cache_path = Path(tempfile.gettempdir()) / "repro_autotune_matmul.json"
    cache_path.unlink(missing_ok=True)
    cache = TuningCache(cache_path)
    COMPILE_COUNTER.reset()
    report = autotune(
        program, strategy="pruned", max_workers=4, cache=cache, seed=SEED,
        space_options=space,
    )
    print(report.summary())
    print(f"pipeline compiles: {COMPILE_COUNTER.count}\n")

    print("== identical request, warm cache ==")
    COMPILE_COUNTER.reset()
    warm = autotune(
        program, strategy="pruned", max_workers=4, cache=TuningCache(cache_path),
        seed=SEED, space_options=space,
    )
    print(warm.summary())
    print(f"pipeline compiles: {COMPILE_COUNTER.count} (served from {cache_path})\n")
    assert COMPILE_COUNTER.count == 0
    assert warm.best.to_dict() == report.best.to_dict()

    print("== serial evaluation reproduces the parallel report ==")
    serial = autotune(
        program, strategy="pruned", max_workers=1, seed=SEED, space_options=space
    )
    assert serial.to_dict() == report.to_dict()
    print(f"identical best over {serial.num_evaluations} evaluations: "
          f"{serial.best.configuration.key()}")


if __name__ == "__main__":
    main()
