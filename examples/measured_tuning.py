"""Measured tuning: the paper's empirical loop through evaluation backends.

The analytical model of Section 4.3 is a *pruning* device — the paper picks
the final mapping by running the shortlisted candidates on the machine.  This
example reproduces that method with the ``hybrid:model>measure-py?top=K``
backend: the model prices the whole space, the measured backend executes the
``lower-py`` stage artifact of the top-K survivors on seeded inputs, and the
measured winner is what gets cached — with ``measurement.kind`` provenance,
under a fingerprint distinct from any model-priced request for the same
kernel.

Run with:  python examples/measured_tuning.py
"""

import tempfile
from pathlib import Path

from repro import TuningCache, autotune
from repro.autotune import SpaceOptions, tuning_fingerprint
from repro.kernels import get_kernel

SEED = 0
SPACE = SpaceOptions(
    thread_counts=(16, 32),
    block_counts=(4, 8),
    tile_candidates_per_geometry=3,
)
HYBRID = "hybrid:model>measure-py:warmup=1,repeat=3?top=4"


def main() -> None:
    kernel = get_kernel("matmul")
    program = kernel.build(m=16, n=16, k=16)
    cache_path = Path(tempfile.gettempdir()) / "repro_measured_tuning.json"
    cache_path.unlink(missing_ok=True)
    cache = TuningCache(cache_path)

    print("== model-priced tuning (the default backend) ==")
    model_report = autotune(program, space_options=SPACE, seed=SEED, cache=cache)
    print(model_report.summary())
    print(f"backend: {model_report.backend}\n")

    print(f"== hybrid tuning: {HYBRID} ==")
    hybrid_report = autotune(
        program, space_options=SPACE, seed=SEED, cache=cache, backend=HYBRID
    )
    print(hybrid_report.summary())
    print(f"backend: {hybrid_report.backend}")
    best = hybrid_report.best
    print(f"winner provenance: measurement.kind = {best.measurement.kind}")
    print(f"timed samples (ms): {['%.2f' % t for t in best.measurement.metadata['times_ms']]}")
    model_priced = sum(1 for r in hybrid_report.results if r.measurement_kind == "model")
    measured = sum(
        1 for r in hybrid_report.results if r.measurement_kind == "measured-py"
    )
    print(f"candidates: {model_priced} stayed model-priced, {measured} re-measured\n")

    print("== provenance separation in the cache ==")
    assert model_report.fingerprint != hybrid_report.fingerprint
    assert tuning_fingerprint(program, space_options=SPACE, seed=SEED) == (
        model_report.fingerprint
    )
    entry = cache.peek(hybrid_report.fingerprint)
    print(f"entries: {len(cache)} (model-priced and measured never share a key)")
    print(f"cached hybrid entry best kind: {entry['best']['measurement']['kind']}")
    print(f"per-kind counts: {cache.measurement_kind_counts()}")


if __name__ == "__main__":
    main()
