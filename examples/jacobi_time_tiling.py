"""1-D Jacobi: dependences, skewing for tilability, and the Figs. 5/7/8 trade-offs.

The Jacobi kernel carries dependences across time steps, so blocks must
synchronise; the paper time-tiles the kernel (time tile 32) and uses the
transformation of Krishnamoorthy et al. to let all blocks start concurrently.
This example

1. shows the dependence analysis and the legality-restoring skewing on a small
   instance (verified against the original program),
2. prices the paper's configurations on the machine model: scratchpad vs.
   DRAM-only (Fig. 5), thread-block sweep (Fig. 7) and tile-size sweep (Fig. 8).

Run with:  python examples/jacobi_time_tiling.py
"""

import numpy as np

from repro import analyze_bands, run_program, simulate_gpu
from repro.kernels import JacobiWorkloadModel, build_jacobi_time_program
from repro.tiling import apply_skewing, find_legal_skewing


def dependence_and_skewing_demo() -> None:
    print("== dependence analysis and skewing (small instance) ==")
    program = build_jacobi_time_program(size=32, time_steps=8)
    analysis = analyze_bands(program)
    print(f"loops: {analysis.loop_order}, space loops: {analysis.space_loops}, "
          f"time loops: {analysis.time_loops}")
    print(f"needs cross-block synchronisation: {analysis.needs_global_synchronization}")

    factor = find_legal_skewing(program, "t", "i")
    print(f"legal skewing factor for (t, i): {factor}")
    skewed = apply_skewing(program, "t", "i", factor)
    skewed_analysis = analyze_bands(skewed)
    print(f"permutable band after skewing: {skewed_analysis.permutable_band}")

    init = np.zeros((9, 34))
    init[0] = np.sin(np.arange(34))
    reference = run_program(program, inputs={"A": init.copy()})
    transformed = run_program(skewed, inputs={"A": init.copy()})
    assert np.allclose(reference.data("A"), transformed.data("A"))
    print("skewed program verified against the original\n")


def price_configurations() -> None:
    print("== Fig. 5-style comparison at N = 128k (modelled ms) ==")
    model = JacobiWorkloadModel(size=128 * 1024, num_blocks=128, threads_per_block=64,
                                time_tile=32, space_tile=256)
    spm = simulate_gpu("spm", model.block_workload(True), model.geometry(True),
                       model.global_sync_rounds(True))
    dram = simulate_gpu("dram", model.block_workload(False), model.geometry(False),
                        model.global_sync_rounds(False))
    print(f"  scratchpad: {spm.time_ms:8.1f} ms   no-scratchpad: {dram.time_ms:8.1f} ms "
          f"({dram.time_ms / spm.time_ms:.1f}x)")

    print("\n== Fig. 7-style thread-block sweep at N = 16k ==")
    for blocks in (8, 16, 32, 64, 128, 256):
        m = JacobiWorkloadModel(size=16 * 1024, num_blocks=blocks, threads_per_block=64,
                                time_tile=32, space_tile=min(-(-16 * 1024 // blocks), 256))
        report = simulate_gpu("sweep", m.block_workload(True), m.geometry(True),
                              m.global_sync_rounds(True))
        print(f"  {blocks:4d} blocks: {report.time_ms:7.2f} ms")

    print("\n== Fig. 8-style tile sweep at N = 512k ==")
    for time_tile, space_tile in ((32, 64), (32, 128), (16, 256), (32, 256), (64, 256)):
        m = JacobiWorkloadModel(size=512 * 1024, num_blocks=128, threads_per_block=64,
                                time_tile=time_tile, space_tile=space_tile)
        report = simulate_gpu("tile", m.block_workload(True), m.geometry(True),
                              m.global_sync_rounds(True))
        print(f"  time {time_tile:3d} / space {space_tile:4d}: {report.time_ms:7.1f} ms")


if __name__ == "__main__":
    dependence_and_skewing_demo()
    price_configurations()
