"""End-to-end demo of the tuning server: dedup, shared cache, warm hits.

Starts a :class:`TuningServer` in-process on an ephemeral port backed by the
*sharded* cache store (one file per fingerprint — worker puts are O(1) and
never rewrite the rest of the cache), submits the same matmul request twice
(cold run, then a warm cache hit with zero compiles), fires four
*concurrent* identical requests to show in-flight deduplication (one tuning
run serves all four), and drains gracefully.

Run with:  python examples/tuning_server_client.py
"""

import shutil
import tempfile
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.service import TuneRequest, TuningClient, TuningServer

SPACE = {"thread_counts": [64, 128], "block_counts": [16, 32], "tile_candidates_per_geometry": 2}


def main() -> None:
    cache_dir = Path(tempfile.gettempdir()) / "repro_tuning_server_demo_cache"
    shutil.rmtree(cache_dir, ignore_errors=True)

    server = TuningServer(
        port=0, executor="process", max_workers=2, cache=f"dir:{cache_dir}"
    )
    server.start()
    client = TuningClient(server.url)
    health = client.healthz()
    print(f"server: {server.url}  health: {health['status']}  "
          f"cache backend: {health['cache_backend']}")

    request = TuneRequest(kernel="matmul", sizes={"m": 128, "n": 128, "k": 128}, space=SPACE)

    print("\n== cold submission (tuned on a worker process) ==")
    pending = client.submit(request)
    job = pending.job(timeout=600)
    print(pending.result().summary())
    print(f"outcome: {pending.outcome}  worker compiles: {job['compiles']}")

    print("\n== identical submission (served from the shared cache) ==")
    warm = client.submit(request)
    job = warm.job(timeout=60)
    print(f"outcome: {warm.outcome}  compiles: {job['compiles']}  "
          f"from-cache: {job['from_cache']}")

    print("\n== 4 concurrent submissions of a new request (in-flight dedup) ==")
    bigger = TuneRequest(kernel="matmul", sizes={"m": 256, "n": 256, "k": 256}, space=SPACE)
    with ThreadPoolExecutor(max_workers=4) as pool:
        handles = list(pool.map(lambda _: client.submit(bigger), range(4)))
    reports = [handle.result(timeout=600) for handle in handles]
    stats = client.cache_stats()
    print(f"4 identical reports: {all(r.to_dict() == reports[0].to_dict() for r in reports)}")
    print(f"server counters: {stats['server']}")
    print(f"cache: {stats['cache']}")

    server.stop()
    print("\nserver drained and stopped")


if __name__ == "__main__":
    main()
