"""The staged compiler: sessions, stage artifacts, and replay-from-stage.

Compiles a matmul kernel through the `repro.compiler` pass pipeline
(analysis → tiling → scratchpad → mapping), inspects the per-stage artifacts
and timings, then replays two explicit configurations — showing that the
config-invariant affine-analysis artifact is computed once and reused, which
is what makes the autotuner's evaluate-hundreds-of-candidates loop cheap.

Run with:  PYTHONPATH=src python examples/compiler_stages.py
"""

from repro import STAGE_COUNTER, CompilationSession, counting_stage_runs
from repro.autotune.space import Configuration
from repro.kernels import build_matmul_program


def main() -> None:
    program = build_matmul_program(128, 128, 128)
    session = CompilationSession(program)

    # 1. Full compile: every stage runs, artifacts freeze on the session.
    mapped = session.compile()
    print("== cold compile ==")
    print(f"tile sizes: {mapped.tile_sizes}  geometry: {mapped.geometry}")

    # 2. Replay two explicit configurations from the tiling stage: the
    #    analysis artifact (dependence polyhedra, bands, extents) is reused.
    candidates = [
        Configuration.make(16, 64, {"i": 16, "j": 16, "k": 32}),
        Configuration.make(32, 128, {"i": 8, "j": 16, "k": 64}),
    ]
    print("\n== replaying candidates (analysis reused) ==")
    with counting_stage_runs() as runs:
        for config in candidates:
            replayed = session.replay(from_stage="tiling", config=config)
            print(
                f"{config.key():40s} shared="
                f"{replayed.geometry.shared_memory_per_block_bytes}B"
            )
    print(f"stage executions during the replays: {runs.counts}")
    assert "analysis" not in runs.counts, "replay must not re-run the analysis"

    # 3. Per-stage report: runs, wall time, artifact fingerprints.
    print("\n== stage report ==")
    for row in session.stage_report():
        kind = "config" if row["config_dependent"] else "invariant"
        print(
            f"{row['stage']:<12} {kind:<10} runs={row['runs']} "
            f"total={row['total_ms']:.1f}ms  fingerprint={row['fingerprint']}"
        )

    # 4. The optional terminal pass renders the mapped program as C-like text.
    print("\n== emitted kernel (head) ==")
    print("\n".join(session.render_c().splitlines()[:12]))

    print(f"\nprocess-wide stage counts so far: {STAGE_COUNTER.snapshot()}")


if __name__ == "__main__":
    main()
