"""Quickstart: automatic scratchpad data management for a small stencil.

Builds a 1-D stencil with the ProgramBuilder, lets the ScratchpadManager
allocate local buffers and generate copy code, prints the transformed
C-like code and verifies (with the reference interpreter) that the staged
program computes exactly the same values as the original.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import ProgramBuilder, ScratchpadManager, ScratchpadOptions, run_program
from repro.ir import program_to_c


def main() -> None:
    # 1. Write the kernel against the builder API.
    builder = ProgramBuilder("smooth", params=["N"])
    n = builder.param("N")
    src = builder.array("src", (130,))
    dst = builder.array("dst", (130,))
    i = builder.var("i")
    with builder.loop("i", 1, n):
        builder.assign(dst[i], (src[i - 1] + src[i] + src[i + 1]) / 3)
    builder.set_default_params(N=128)
    program = builder.build()

    # 2. Apply the paper's Section-3 framework: data spaces, reuse analysis,
    #    buffer allocation, access remapping and copy-code generation.
    manager = ScratchpadManager(ScratchpadOptions(target="cell"))
    staged, plan = manager.apply(program)

    print("--- scratchpad plan ---")
    print(plan.summary())
    print()
    print("--- transformed program ---")
    print(program_to_c(staged))

    # 3. Verify that the transformation preserved the program's semantics.
    data = np.random.default_rng(0).random(130)
    reference = run_program(program, inputs={"src": data.copy(), "dst": np.zeros(130)})
    transformed = run_program(staged, inputs={"src": data.copy(), "dst": np.zeros(130)})
    assert np.allclose(reference.data("dst"), transformed.data("dst"))
    print("\nsemantics preserved: the staged program matches the original.")
    print(f"scratchpad footprint: {plan.total_footprint_bytes()} bytes")


if __name__ == "__main__":
    main()
